module Value = Memory.Value
module Obs = Lepower_obs

(* Instrumentation points (no-ops unless Lepower_obs.Metrics is enabled). *)
let m_steps = Obs.Metrics.counter "engine.steps"
let m_store_ops = Obs.Metrics.counter "engine.store_ops"
let m_cas_success = Obs.Metrics.counter "engine.cas_success"
let m_cas_failure = Obs.Metrics.counter "engine.cas_failure"
let m_faults = Obs.Metrics.counter "engine.faults"
let m_runs = Obs.Metrics.counter "engine.runs"
let h_steps_per_proc = Obs.Metrics.histogram "engine.steps_per_proc"

(* Phase attribution (no-ops unless Lepower_prof.Phase is enabled). *)
let ph_step = Lepower_prof.Phase.make "engine.step"
let ph_choose = Lepower_prof.Phase.make "sched.choose"

type config = {
  store : Memory.Store.t;
  procs : Proc.t array;
  time : int;
  trace : Trace.event list;
}

type backend = Persistent | Arena

let backend_name = function Persistent -> "persistent" | Arena -> "arena"

(* Store-op metrics, shared by the persistent [step] and [Machine.step]
   so both backends feed the same counters. *)
let record_store_op o result =
  if Obs.Metrics.is_enabled () then begin
    Obs.Metrics.incr m_store_ops;
    (* A compare&swap succeeds iff it returns its expected value and
       actually changes the state (the alphabet-reading cas with
       expected = desired is a read, not a successful swap). *)
    match o with
    | Value.Pair (Value.Sym "cas", Value.Pair (expected, desired)) ->
      if Value.equal result expected && not (Value.equal expected desired)
      then Obs.Metrics.incr m_cas_success
      else Obs.Metrics.incr m_cas_failure
    | _ -> ()
  end

let init store progs =
  let procs = List.mapi (fun pid prog -> Proc.make ~pid prog) progs in
  { store; procs = Array.of_list procs; time = 0; trace = [] }

let enabled config =
  let acc = ref [] in
  for i = Array.length config.procs - 1 downto 0 do
    if Proc.is_running config.procs.(i) then acc := i :: !acc
  done;
  !acc

let set_proc config pid proc =
  let procs = Array.copy config.procs in
  procs.(pid) <- proc;
  { config with procs }

let step_impl config pid =
  let proc = config.procs.(pid) in
  if not (Proc.is_running proc) then config
  else begin
    Obs.Metrics.incr m_steps;
    match proc.Proc.prog with
    | Program.Done v ->
      set_proc config pid { proc with status = Proc.Decided v }
    | Program.Step (loc, o, k) -> (
      match Memory.Store.apply config.store ~pid loc o with
      | Error msg ->
        Obs.Metrics.incr m_faults;
        set_proc config pid { proc with status = Proc.Faulty msg }
      | Ok (store, result) ->
        record_store_op o result;
        let event = { Trace.time = config.time; pid; loc; op = o; result } in
        let proc' =
          match k result with
          | exception Value.Type_error (want, got) ->
            Obs.Metrics.incr m_faults;
            {
              proc with
              Proc.status =
                Proc.Faulty
                  (Printf.sprintf "type error: expected %s, got %s" want
                     (Value.to_string got));
              steps = proc.Proc.steps + 1;
            }
          | Program.Done v ->
            {
              proc with
              Proc.prog = Program.Done v;
              status = Proc.Decided v;
              steps = proc.Proc.steps + 1;
            }
          | next ->
            { proc with Proc.prog = next; steps = proc.Proc.steps + 1 }
        in
        let config = set_proc config pid proc' in
        { config with store; time = config.time + 1; trace = event :: config.trace })
  end

let step config pid =
  let tok = Lepower_prof.Phase.enter ph_step in
  let config' = step_impl config pid in
  Lepower_prof.Phase.leave tok;
  config'

let step_lost config pid =
  (* Lost-write fault: the process takes its step — response computed
     against the pre-state, continuation advanced, trace event recorded,
     clock ticked — but the store keeps its pre-step states, so any write
     the operation performed evaporates.  The process cannot tell. *)
  let config' = step config pid in
  { config' with store = config.store }

let crash config pid =
  let proc = config.procs.(pid) in
  if Proc.is_running proc then
    set_proc config pid { proc with Proc.status = Proc.Crashed }
  else config

let trace config = List.rev config.trace

type outcome = {
  final : config;
  decisions : (int * Value.t) list;
  faults : (int * string) list;
  crashes : int list;
  steps : int;
  hit_step_limit : bool;
}

let outcome_of ~hit_step_limit config =
  let decisions = ref [] and faults = ref [] and crashes = ref [] in
  Array.iter
    (fun (p : Proc.t) ->
      match p.Proc.status with
      | Proc.Decided v -> decisions := (p.Proc.pid, v) :: !decisions
      | Proc.Faulty m -> faults := (p.Proc.pid, m) :: !faults
      | Proc.Crashed -> crashes := p.Proc.pid :: !crashes
      | Proc.Running -> ())
    config.procs;
  {
    final = config;
    decisions = List.rev !decisions;
    faults = List.rev !faults;
    crashes = List.rev !crashes;
    steps = config.time;
    hit_step_limit;
  }

let run ?(max_steps = 1_000_000) ~sched config =
  let rec go config =
    if config.time >= max_steps then outcome_of ~hit_step_limit:true config
    else
      match enabled config with
      | [] -> outcome_of ~hit_step_limit:false config
      | pids ->
        let pid =
          let tok = Lepower_prof.Phase.enter ph_choose in
          let pid = sched.Sched.choose ~time:config.time ~enabled:pids in
          Lepower_prof.Phase.leave tok;
          pid
        in
        (* [Sched.halt] — or, defensively, any pid outside the enabled
           set, which would otherwise no-op-step forever — ends the run
           with every process left in its current status. *)
        if not (List.mem pid pids) then
          outcome_of ~hit_step_limit:false config
        else begin
          sched.Sched.observe ~time:config.time ~pid;
          go (step config pid)
        end
  in
  Obs.Metrics.incr m_runs;
  Obs.Span.with_span "engine.run"
    ~args:
      [
        ("procs", Obs.Json.Int (Array.length config.procs));
        ("sched", Obs.Json.String sched.Sched.name);
      ]
    (fun () ->
      let outcome = go config in
      if Obs.Metrics.is_enabled () then
        Array.iter
          (fun (p : Proc.t) ->
            Obs.Metrics.observe h_steps_per_proc (Float.of_int p.Proc.steps))
          outcome.final.procs;
      outcome)

let distinct_decisions outcome =
  List.fold_left
    (fun acc (_, v) -> if List.exists (Value.equal v) acc then acc else v :: acc)
    [] outcome.decisions
  |> List.rev

let max_steps_per_proc outcome =
  Array.fold_left
    (fun acc (p : Proc.t) -> max acc p.Proc.steps)
    0 outcome.final.procs

let status_equal a b =
  match (a, b) with
  | Proc.Running, Proc.Running | Proc.Crashed, Proc.Crashed -> true
  | Proc.Decided x, Proc.Decided y -> Value.equal x y
  | Proc.Faulty x, Proc.Faulty y -> String.equal x y
  | (Proc.Running | Proc.Decided _ | Proc.Crashed | Proc.Faulty _), _ -> false

let event_equal (a : Trace.event) (b : Trace.event) =
  a.Trace.time = b.Trace.time
  && a.Trace.pid = b.Trace.pid
  && String.equal a.Trace.loc b.Trace.loc
  && Value.equal a.Trace.op b.Trace.op
  && Value.equal a.Trace.result b.Trace.result

let config_equal a b =
  a.time = b.time
  && Memory.Store.compare_states a.store b.store = 0
  && Array.length a.procs = Array.length b.procs
  && Array.for_all2
       (fun (p : Proc.t) (q : Proc.t) ->
         p.Proc.steps = q.Proc.steps && status_equal p.Proc.status q.Proc.status)
       a.procs b.procs
  && List.equal event_equal a.trace b.trace

(* ------------------------------------------------------------------ *)
(* The arena-backed machine: same step semantics, mutation + journal.  *)

let read_sym = Value.Sym "read"

module Machine = struct
  (* Hot-path state is kept in unboxed int arrays so the DFS inner loop
     performs no [caml_modify] write barriers:

     - a pc is an int: [>= 0] is a compiled node id, [-1] means "the
       closure-interpreter continuation in [prim_pcs.(pid)]";
     - a status is one of the [st_*] codes below, with the decided
       value / fault message parked in side arrays ([decided.(pid)] /
       [faults.(pid)] are only meaningful under the matching code, and
       may go stale after an undo — never read them otherwise). *)
  let st_running = 0

  let st_crashed = 1

  let st_decided = 2

  let st_faulty = 3

  let prim_dummy = Program.Done Value.Unit

  (* One journal entry per status-changing or store-touching step:
     [J_event] is a successful store operation (steps/time advanced, the
     trace grew, and the arena journal position [smark] — taken {e
     before} the apply — bounds its store writes); [J_status] is a pure
     status change out of [Running] (decide, store-rejected fault,
     crash) with the pc untouched.  [prev_node >= 0] restores the pc
     directly; otherwise [prev_prim] holds the pre-step closure
     continuation. *)
  type jentry =
    | J_event of {
        pid : int;
        prev_node : int;
        prev_prim : Program.prim;
        smark : int;
        loc : string;
        op : Value.t;
        result : Value.t;
        time : int;
      }
    | J_status of { pid : int }

  (* Fused transition memo, one per compiled [Node] instruction.  A
     clean store-op step from a node is a pure function of the current
     state of the instruction's location: [Spec.apply] is a
     deterministic sequential specification, and [pid], [loc] and [op]
     are all fixed by the instruction, as is the continuation edge given
     the result.  Bounded-size objects have tiny state alphabets, so a
     short association array keyed by state covers the whole transition
     table after a brief warm-up and the hot path skips the spec closure
     (operation decoding, alphabet scans) and both hash lookups.

     Validity: an entry speaks for the spec it was built against.  The
     arena only ever swaps a location's spec via [freeze] (journalled,
     so undo restores the original object), hence the physical witness
     [x_spec]; on mismatch the memo is rebuilt for the current spec.
     Faulting and inline-fallback outcomes are never memoized. *)
  type xout = {
    x_state' : Value.t;
    x_result : Value.t;
    x_next : int;  (* next node id *)
    x_decided : Value.t option;  (* [Some v] when [x_next] is [Done v] *)
  }

  type xinst = {
    x_loc : int;  (* interned arena id of the instruction's location *)
    x_loc_name : string;
    x_op : Value.t;
    x_spec : Memory.Spec.t;  (* physical validity witness *)
    mutable x_n : int;
    mutable x_keys : Value.t array;  (* pre-states, scanned linearly *)
    mutable x_outs : xout array;
  }

  type t = {
    arena : Memory.Store.Arena.t;
    progs : Program.Compiled.t array;
    pcs : int array;
    prim_pcs : Program.prim array;
    statuses : int array;
    decided : Value.t array;
    faults : string array;
    steps : int array;
    mutable time : int;
    base_trace : Trace.event list;
        (* reverse-chron trace of the seed config; the machine's own
           events live in the journal and are materialized on demand *)
    mutable journal : jentry array;
    mutable jlen : int;
    j_statuses : jentry array;
        (* interned per-pid [J_status] entries so status-only journal
           pushes (decide, crash, store-rejected fault) allocate nothing *)
    memos : xinst option array array;  (* per pid, indexed by node id *)
    (* Scratch describing the most recent [step]'s store operation, for
       callers maintaining incremental fingerprints.  Valid only until
       the next step/undo. *)
    mutable last_valid : bool;
    mutable last_loc : string;
    mutable last_op : Value.t;
    mutable last_result : Value.t;
  }

  let of_config ?max_nodes (config : config) =
    let n = Array.length config.procs in
    let statuses = Array.make n st_running in
    let decided = Array.make n Value.Unit in
    let faults = Array.make n "" in
    Array.iteri
      (fun i (p : Proc.t) ->
        match p.Proc.status with
        | Proc.Running -> ()
        | Proc.Crashed -> statuses.(i) <- st_crashed
        | Proc.Decided v ->
          statuses.(i) <- st_decided;
          decided.(i) <- v
        | Proc.Faulty msg ->
          statuses.(i) <- st_faulty;
          faults.(i) <- msg)
      config.procs;
    {
      arena = Memory.Store.Arena.of_store config.store;
      progs =
        Array.map
          (fun (p : Proc.t) -> Program.Compiled.compile ?max_nodes p.Proc.prog)
          config.procs;
      pcs = Array.make n 0;
      prim_pcs = Array.make n prim_dummy;
      statuses;
      decided;
      faults;
      steps = Array.map (fun (p : Proc.t) -> p.Proc.steps) config.procs;
      time = config.time;
      base_trace = config.trace;
      journal = Array.make 64 (J_status { pid = 0 });
      jlen = 0;
      j_statuses = Array.init n (fun pid -> J_status { pid });
      memos = Array.init n (fun _ -> [||]);
      last_valid = false;
      last_loc = "";
      last_op = Value.Unit;
      last_result = Value.Unit;
    }

  let n_procs m = Array.length m.pcs
  let time m = m.time

  let status m pid =
    let s = m.statuses.(pid) in
    if s = st_running then Proc.Running
    else if s = st_crashed then Proc.Crashed
    else if s = st_decided then Proc.Decided m.decided.(pid)
    else Proc.Faulty m.faults.(pid)

  let is_running m pid = m.statuses.(pid) = st_running

  let enabled m =
    let acc = ref [] in
    for i = Array.length m.statuses - 1 downto 0 do
      if is_running m i then acc := i :: !acc
    done;
    !acc

  let mem_loc m loc = Memory.Store.Arena.mem m.arena loc
  let state_bindings m = Memory.Store.Arena.state_bindings m.arena

  let push m e =
    (if m.jlen = Array.length m.journal then begin
       let j = Array.make (2 * m.jlen) m.journal.(0) in
       Array.blit m.journal 0 j 0 m.jlen;
       m.journal <- j
     end);
    m.journal.(m.jlen) <- e;
    m.jlen <- m.jlen + 1

  let decide m pid v =
    m.statuses.(pid) <- st_decided;
    m.decided.(pid) <- v;
    push m m.j_statuses.(pid)

  (* Status flip inside a store-op step: the step's own [J_event]
     restores [Running] on undo, so no [J_status] entry is logged. *)
  let decide_nopush m pid v =
    m.statuses.(pid) <- st_decided;
    m.decided.(pid) <- v

  let fault m pid msg =
    m.statuses.(pid) <- st_faulty;
    m.faults.(pid) <- msg

  (* ---- transition-memo plumbing ---- *)

  let memo_slot m pid id =
    let xa = m.memos.(pid) in
    let len = Array.length xa in
    if id < len then xa
    else begin
      let xa' = Array.make (max (2 * len) (id + 8)) None in
      Array.blit xa 0 xa' 0 len;
      m.memos.(pid) <- xa';
      xa'
    end

  let memo_seed m cp id =
    let loc = Program.Compiled.loc_at cp id in
    match Memory.Store.Arena.id_of_loc m.arena loc with
    | None -> None  (* unknown location: the slow path faults *)
    | Some li ->
      Some
        {
          x_loc = li;
          x_loc_name = loc;
          x_op = Program.Compiled.op_value_at cp id;
          x_spec = Memory.Store.Arena.spec_at m.arena li;
          x_n = 0;
          x_keys = [||];
          x_outs = [||];
        }

  let rec memo_find x st k =
    if k >= x.x_n then -1
    else
      (* in bounds: [k < x_n <= Array.length x_keys] *)
      let key = Array.unsafe_get x.x_keys k in
      if key == st || Value.equal key st then k else memo_find x st (k + 1)

  let memo_append x key o =
    (if x.x_n = Array.length x.x_keys then begin
       let cap = max 4 (2 * x.x_n) in
       let ks = Array.make cap key and os = Array.make cap o in
       Array.blit x.x_keys 0 ks 0 x.x_n;
       Array.blit x.x_outs 0 os 0 x.x_n;
       x.x_keys <- ks;
       x.x_outs <- os
     end);
    x.x_keys.(x.x_n) <- key;
    x.x_outs.(x.x_n) <- o;
    x.x_n <- x.x_n + 1

  (* Generic node step — first visit of a (node, state) pair, or a
     non-memoizable outcome.  On a clean [Ok] + node continuation it
     installs the transition into [x] for next time. *)
  let step_node_slow m pid cp id x =
    let loc = Program.Compiled.loc_at cp id in
    let op = Program.Compiled.op_value_at cp id in
    let smark = Memory.Store.Arena.mark m.arena in
    match Memory.Store.Arena.apply m.arena ~pid loc op with
    | Error msg ->
      Obs.Metrics.incr m_faults;
      fault m pid msg;
      push m m.j_statuses.(pid)
    | Ok result ->
      record_store_op op result;
      (match Program.Compiled.advance cp id result with
      | Program.Compiled.O_fault msg ->
        (* pc deliberately unchanged, like the persistent engine
           keeping [prog] on a continuation type error *)
        Obs.Metrics.incr m_faults;
        fault m pid msg
      | Program.Compiled.O_next id' ->
        m.pcs.(pid) <- id';
        if Program.Compiled.is_done cp id' then
          decide_nopush m pid (Program.Compiled.decided_value cp id')
      | Program.Compiled.O_inline next -> (
        m.pcs.(pid) <- -1;
        m.prim_pcs.(pid) <- next;
        match next with
        | Program.Done v -> decide_nopush m pid v
        | Program.Step _ -> ()));
      m.steps.(pid) <- m.steps.(pid) + 1;
      push m
        (J_event
           {
             pid;
             prev_node = id;
             prev_prim = prim_dummy;
             smark;
             loc;
             op;
             result;
             time = m.time;
           });
      m.time <- m.time + 1;
      m.last_valid <- true;
      m.last_loc <- loc;
      m.last_op <- op;
      m.last_result <- result;
      (match x with
      | None -> ()
      | Some x ->
        if m.statuses.(pid) <> st_faulty then begin
          let next = m.pcs.(pid) in
          if next >= 0 then
            memo_append x
              (Memory.Store.Arena.last_old_state m.arena)
              {
                x_state' = Memory.Store.Arena.state_at m.arena x.x_loc;
                x_result = result;
                x_next = next;
                x_decided =
                  (if m.statuses.(pid) = st_decided then
                     Some m.decided.(pid)
                   else None);
              }
        end)

  (* Closure-interpreter fallback for instructions the lowering bailed
     on — identical to the persistent engine's continuation handling. *)
  let step_prim_slow m pid prim loc op k =
    let smark = Memory.Store.Arena.mark m.arena in
    match Memory.Store.Arena.apply m.arena ~pid loc op with
    | Error msg ->
      Obs.Metrics.incr m_faults;
      fault m pid msg;
      push m m.j_statuses.(pid)
    | Ok result ->
      record_store_op op result;
      (match k result with
      | exception Value.Type_error (want, got) ->
        Obs.Metrics.incr m_faults;
        fault m pid
          (Printf.sprintf "type error: expected %s, got %s" want
             (Value.to_string got))
      | Program.Done v ->
        m.prim_pcs.(pid) <- Program.Done v;
        decide_nopush m pid v
      | next -> m.prim_pcs.(pid) <- next);
      m.steps.(pid) <- m.steps.(pid) + 1;
      push m
        (J_event
           {
             pid;
             prev_node = -1;
             prev_prim = prim;
             smark;
             loc;
             op;
             result;
             time = m.time;
           });
      m.time <- m.time + 1;
      m.last_valid <- true;
      m.last_loc <- loc;
      m.last_op <- op;
      m.last_result <- result

  let step_impl m pid =
    m.last_valid <- false;
    if m.statuses.(pid) = st_running then begin
      Obs.Metrics.incr m_steps;
      let cp = m.progs.(pid) in
      let id = m.pcs.(pid) in
      if id >= 0 then
        if Program.Compiled.is_done cp id then
          decide m pid (Program.Compiled.decided_value cp id)
        else begin
          let xa = memo_slot m pid id in
          let x =
            match xa.(id) with
            | Some x
              when Memory.Store.Arena.spec_at m.arena x.x_loc == x.x_spec ->
              Some x
            | _ ->
              (* first visit, or the spec changed (freeze/undo): build
                 a fresh memo for the spec currently in force *)
              let x = memo_seed m cp id in
              xa.(id) <- x;
              x
          in
          match x with
          | None -> step_node_slow m pid cp id None
          | Some x ->
            let st = Memory.Store.Arena.state_at m.arena x.x_loc in
            let k = memo_find x st 0 in
            if k < 0 then step_node_slow m pid cp id (Some x)
            else begin
              let o = x.x_outs.(k) in
              let smark = Memory.Store.Arena.mark m.arena in
              Memory.Store.Arena.commit_state m.arena x.x_loc st o.x_state';
              record_store_op x.x_op o.x_result;
              m.pcs.(pid) <- o.x_next;
              (match o.x_decided with
              | None -> ()
              | Some v -> decide_nopush m pid v);
              m.steps.(pid) <- m.steps.(pid) + 1;
              push m
                (J_event
                   {
                     pid;
                     prev_node = id;
                     prev_prim = prim_dummy;
                     smark;
                     loc = x.x_loc_name;
                     op = x.x_op;
                     result = o.x_result;
                     time = m.time;
                   });
              m.time <- m.time + 1;
              m.last_valid <- true;
              m.last_loc <- x.x_loc_name;
              m.last_op <- x.x_op;
              m.last_result <- o.x_result
            end
        end
      else
        match m.prim_pcs.(pid) with
        | Program.Done v -> decide m pid v
        | Program.Step (loc, op, k) as prim ->
          step_prim_slow m pid prim loc op k
    end

  let step m pid =
    let tok = Lepower_prof.Phase.enter ph_step in
    step_impl m pid;
    Lepower_prof.Phase.leave tok

  let crash m pid =
    if is_running m pid then begin
      m.statuses.(pid) <- st_crashed;
      push m m.j_statuses.(pid)
    end

  let step_lost m pid =
    let smark = Memory.Store.Arena.mark m.arena in
    step m pid;
    Memory.Store.Arena.undo_to m.arena smark

  let freeze m loc = Memory.Store.Arena.freeze m.arena loc
  let mark m = m.jlen

  let undo_to m mk =
    while m.jlen > mk do
      m.jlen <- m.jlen - 1;
      match m.journal.(m.jlen) with
      | J_status { pid } -> m.statuses.(pid) <- st_running
      | J_event e ->
        m.statuses.(e.pid) <- st_running;
        (if e.prev_node >= 0 then m.pcs.(e.pid) <- e.prev_node
         else begin
           m.pcs.(e.pid) <- -1;
           m.prim_pcs.(e.pid) <- e.prev_prim
         end);
        m.steps.(e.pid) <- m.steps.(e.pid) - 1;
        m.time <- m.time - 1;
        Memory.Store.Arena.undo_to m.arena e.smark
    done;
    m.last_valid <- false

  (* ---- allocation-free naive enumeration ---- *)

  type walk_stats = {
    mutable w_configs : int;
    mutable w_terminals : int;
    mutable w_truncated : int;
    mutable w_max_depth : int;
    mutable w_choice_points : int;
  }

  (* Exhaustive naive walk (every interleaving, optional crash moves, no
     memoization), counting only — the caller sees no configurations, so
     nothing needs the journal or the trace: every move's undo data
     lives in the DFS stack frame.  Memo-hit steps write the arena
     directly and restore the saved state on backtrack; first visits and
     non-memoizable steps (prim fallback, faults, decide-only programs)
     go through the journaled [step_impl]/[undo_to] pair.  Crash moves
     are a status flip both ways.  Traversal order and counter semantics
     mirror the Explore naive DFS exactly; steps are not phase-
     attributed here (metrics counters are still fed when enabled). *)
  let walk_naive ?tick ~crash_faults ~max_steps ~depth0 ws m =
    let n = Array.length m.statuses in
    let statuses = m.statuses and pcs = m.pcs and steps = m.steps in
    let arena = m.arena in
    let sarr = Memory.Store.Arena.states_view arena in
    let specs = Memory.Store.Arena.specs_view arena in
    let metrics_on = Obs.Metrics.is_enabled () in
    (* [running] is threaded through the recursion so leaves need no
       status scan at all; every status flip below adjusts it. *)
    let running0 = ref 0 in
    for pid = 0 to n - 1 do
      if statuses.(pid) = st_running then incr running0
    done;
    (* unsafe_get/set: [pid < n], memo ids are within the slot array by
       the explicit length check, [memo_find] returns [< x_n], and
       [x_loc] was interned by the arena — all indices are in bounds by
       construction. *)
    let rec go depth running =
      if depth > ws.w_max_depth then ws.w_max_depth <- depth;
      ws.w_configs <- ws.w_configs + 1;
      (if ws.w_configs land 8191 = 0 then
         match tick with None -> () | Some f -> f ws);
      if running = 0 then ws.w_terminals <- ws.w_terminals + 1
      else if depth >= max_steps then ws.w_truncated <- ws.w_truncated + 1
      else begin
        if running >= 2 || crash_faults then
          ws.w_choice_points <- ws.w_choice_points + 1;
        for pid = 0 to n - 1 do
          if Array.unsafe_get statuses pid = st_running then begin
            (let fast =
               let pcv = Array.unsafe_get pcs pid in
               if pcv < 0 then false
               else
                 let xa = Array.unsafe_get m.memos pid in
                 if pcv >= Array.length xa then false
                 else
                   (* a memo only ever exists for non-[Done] nodes, so
                      the [is_done] dispatch is implicit here *)
                   match Array.unsafe_get xa pcv with
                   | Some x when Array.unsafe_get specs x.x_loc == x.x_spec
                     -> (
                     let st = Array.unsafe_get sarr x.x_loc in
                     let k = memo_find x st 0 in
                     if k < 0 then false
                     else begin
                       (* gentle move-to-front: a hit bubbles one slot
                          toward the front, so the DFS's temporal
                          locality keeps the common state at scan
                          position 0 without thrashing *)
                       let k =
                         if k > 0 then begin
                           let pk = Array.unsafe_get x.x_keys (k - 1)
                           and po = Array.unsafe_get x.x_outs (k - 1) in
                           Array.unsafe_set x.x_keys (k - 1)
                             (Array.unsafe_get x.x_keys k);
                           Array.unsafe_set x.x_outs (k - 1)
                             (Array.unsafe_get x.x_outs k);
                           Array.unsafe_set x.x_keys k pk;
                           Array.unsafe_set x.x_outs k po;
                           k - 1
                         end
                         else k
                       in
                       let o = Array.unsafe_get x.x_outs k in
                       if metrics_on then begin
                         Obs.Metrics.incr m_steps;
                         record_store_op x.x_op o.x_result
                       end;
                       Array.unsafe_set sarr x.x_loc o.x_state';
                       Array.unsafe_set pcs pid o.x_next;
                       let running' =
                         match o.x_decided with
                         | None -> running
                         | Some v ->
                           Array.unsafe_set statuses pid st_decided;
                           Array.unsafe_set m.decided pid v;
                           running - 1
                       in
                       Array.unsafe_set steps pid
                         (Array.unsafe_get steps pid + 1);
                       m.time <- m.time + 1;
                       go (depth + 1) running';
                       m.time <- m.time - 1;
                       Array.unsafe_set steps pid
                         (Array.unsafe_get steps pid - 1);
                       Array.unsafe_set statuses pid st_running;
                       Array.unsafe_set pcs pid pcv;
                       Array.unsafe_set sarr x.x_loc st;
                       true
                     end)
                   | _ -> false
             in
             if not fast then begin
               let mk = m.jlen in
               step_impl m pid;
               go (depth + 1) (if is_running m pid then running else running - 1);
               undo_to m mk
             end);
            if crash_faults then begin
              Array.unsafe_set statuses pid st_crashed;
              go depth (running - 1);
              Array.unsafe_set statuses pid st_running
            end
          end
        done
      end
    in
    go depth0 !running0

  (* [walk_naive] with per-leaf hooks: same traversal, same counters,
     and — crucially — the same allocation-free memo fast path, kept as
     a separate clone so the uncheckable plain walk above pays nothing
     for the hook plumbing.  Every move is recorded into [path]
     ([Step pid] as [pid], [Crash pid] as [-pid-1]); the hook argument
     is the number of moves currently recorded, so a hook can
     reconstruct the schedule (and from it the trace) by replaying
     [path.(0 .. mc-1)] from the walk's root configuration.  That
     reconstruction is the only way to get the trace at a leaf: memo-hit
     steps bypass the journal, so [config]/the journal do not cover
     them here.  [path] needs [max_steps + n_procs + 1] slots — at most
     [max_steps] step moves plus one crash per process on any branch.
     Hooks observe the machine mid-walk and must not step or undo it. *)
  let walk_naive_checked ?tick ~crash_faults ~max_steps ~depth0 ~path
      ~on_terminal ~on_truncated ws m =
    let n = Array.length m.statuses in
    let statuses = m.statuses and pcs = m.pcs and steps = m.steps in
    let arena = m.arena in
    let sarr = Memory.Store.Arena.states_view arena in
    let specs = Memory.Store.Arena.specs_view arena in
    let metrics_on = Obs.Metrics.is_enabled () in
    let running0 = ref 0 in
    for pid = 0 to n - 1 do
      if statuses.(pid) = st_running then incr running0
    done;
    (* unsafe accesses: in bounds by the same argument as [walk_naive];
       [path] writes stay under [max_steps + n + 1] by the slot-count
       argument in the comment above. *)
    let rec go depth mc running =
      if depth > ws.w_max_depth then ws.w_max_depth <- depth;
      ws.w_configs <- ws.w_configs + 1;
      (if ws.w_configs land 8191 = 0 then
         match tick with None -> () | Some f -> f ws);
      if running = 0 then begin
        ws.w_terminals <- ws.w_terminals + 1;
        on_terminal mc
      end
      else if depth >= max_steps then begin
        ws.w_truncated <- ws.w_truncated + 1;
        on_truncated mc
      end
      else begin
        if running >= 2 || crash_faults then
          ws.w_choice_points <- ws.w_choice_points + 1;
        for pid = 0 to n - 1 do
          if Array.unsafe_get statuses pid = st_running then begin
            (let fast =
               let pcv = Array.unsafe_get pcs pid in
               if pcv < 0 then false
               else
                 let xa = Array.unsafe_get m.memos pid in
                 if pcv >= Array.length xa then false
                 else
                   match Array.unsafe_get xa pcv with
                   | Some x when Array.unsafe_get specs x.x_loc == x.x_spec
                     -> (
                     let st = Array.unsafe_get sarr x.x_loc in
                     let k = memo_find x st 0 in
                     if k < 0 then false
                     else begin
                       let k =
                         if k > 0 then begin
                           let pk = Array.unsafe_get x.x_keys (k - 1)
                           and po = Array.unsafe_get x.x_outs (k - 1) in
                           Array.unsafe_set x.x_keys (k - 1)
                             (Array.unsafe_get x.x_keys k);
                           Array.unsafe_set x.x_outs (k - 1)
                             (Array.unsafe_get x.x_outs k);
                           Array.unsafe_set x.x_keys k pk;
                           Array.unsafe_set x.x_outs k po;
                           k - 1
                         end
                         else k
                       in
                       let o = Array.unsafe_get x.x_outs k in
                       if metrics_on then begin
                         Obs.Metrics.incr m_steps;
                         record_store_op x.x_op o.x_result
                       end;
                       Array.unsafe_set sarr x.x_loc o.x_state';
                       Array.unsafe_set pcs pid o.x_next;
                       let running' =
                         match o.x_decided with
                         | None -> running
                         | Some v ->
                           Array.unsafe_set statuses pid st_decided;
                           Array.unsafe_set m.decided pid v;
                           running - 1
                       in
                       Array.unsafe_set steps pid
                         (Array.unsafe_get steps pid + 1);
                       m.time <- m.time + 1;
                       Array.unsafe_set path mc pid;
                       go (depth + 1) (mc + 1) running';
                       m.time <- m.time - 1;
                       Array.unsafe_set steps pid
                         (Array.unsafe_get steps pid - 1);
                       Array.unsafe_set statuses pid st_running;
                       Array.unsafe_set pcs pid pcv;
                       Array.unsafe_set sarr x.x_loc st;
                       true
                     end)
                   | _ -> false
             in
             if not fast then begin
               let mk = m.jlen in
               step_impl m pid;
               Array.unsafe_set path mc pid;
               go (depth + 1) (mc + 1)
                 (if is_running m pid then running else running - 1);
               undo_to m mk
             end);
            if crash_faults then begin
              Array.unsafe_set statuses pid st_crashed;
              Array.unsafe_set path mc (-pid - 1);
              go depth (mc + 1) (running - 1);
              Array.unsafe_set statuses pid st_running
            end
          end
        done
      end
    in
    go depth0 0 !running0

  let last_step_event m = m.last_valid
  let last_loc m = m.last_loc
  let last_op m = m.last_op
  let last_result m = m.last_result
  let last_old_state m = Memory.Store.Arena.last_old_state m.arena

  let last_new_state m =
    Memory.Store.Arena.state_at m.arena (Memory.Store.Arena.last_id m.arena)

  (* ---- journal-free single-step frames ----

     The reduced explorer (dedup / sleep-set POR) cannot hand the whole
     enumeration to [walk_naive]: it interleaves its own bookkeeping
     (fingerprint sums, sleep bitsets, visited table) between moves.
     A [frame] packages exactly one move's undo data in the caller's
     stack frame instead of the journal: [step_frame] replicates the
     memoized fast path of [walk_naive] (direct array writes, gentle
     move-to-front) and records the inverse plus the step's store delta
     in the frame; first visits and non-memoizable steps fall back to
     the journaled [step_impl], with the frame holding only the mark.
     The [frame_*] accessors expose the delta uniformly across both
     paths so callers maintaining incremental fingerprints never touch
     the machine's scratch directly. *)

  type frame = {
    mutable f_fast : bool;  (* true: stack-undo memo hit; false: journaled *)
    mutable f_pid : int;
    mutable f_pc : int;  (* fast: node id to restore *)
    mutable f_loc : int;  (* fast: arena location id touched *)
    mutable f_mark : int;  (* slow: journal mark to rewind to *)
    mutable f_loc_name : string;
    mutable f_op : Value.t;
    mutable f_result : Value.t;
    mutable f_old : Value.t;
    mutable f_new : Value.t;
  }

  let frame () =
    {
      f_fast = false;
      f_pid = 0;
      f_pc = 0;
      f_loc = 0;
      f_mark = 0;
      f_loc_name = "";
      f_op = Value.Unit;
      f_result = Value.Unit;
      f_old = Value.Unit;
      f_new = Value.Unit;
    }

  let step_frame m pid f =
    f.f_pid <- pid;
    let fast =
      let pcv = m.pcs.(pid) in
      if pcv < 0 then false
      else
        let xa = m.memos.(pid) in
        if pcv >= Array.length xa then false
        else
          match xa.(pcv) with
          | Some x when Memory.Store.Arena.spec_at m.arena x.x_loc == x.x_spec
            -> (
            let sarr = Memory.Store.Arena.states_view m.arena in
            let st = sarr.(x.x_loc) in
            let k = memo_find x st 0 in
            if k < 0 then false
            else begin
              (* gentle move-to-front, exactly as in [walk_naive] *)
              let k =
                if k > 0 then begin
                  let pk = x.x_keys.(k - 1) and po = x.x_outs.(k - 1) in
                  x.x_keys.(k - 1) <- x.x_keys.(k);
                  x.x_outs.(k - 1) <- x.x_outs.(k);
                  x.x_keys.(k) <- pk;
                  x.x_outs.(k) <- po;
                  k - 1
                end
                else k
              in
              let o = x.x_outs.(k) in
              if Obs.Metrics.is_enabled () then begin
                Obs.Metrics.incr m_steps;
                record_store_op x.x_op o.x_result
              end;
              sarr.(x.x_loc) <- o.x_state';
              m.pcs.(pid) <- o.x_next;
              (match o.x_decided with
              | None -> ()
              | Some v ->
                m.statuses.(pid) <- st_decided;
                m.decided.(pid) <- v);
              m.steps.(pid) <- m.steps.(pid) + 1;
              m.time <- m.time + 1;
              f.f_fast <- true;
              f.f_pc <- pcv;
              f.f_loc <- x.x_loc;
              f.f_loc_name <- x.x_loc_name;
              f.f_op <- x.x_op;
              f.f_result <- o.x_result;
              f.f_old <- st;
              f.f_new <- o.x_state';
              true
            end)
          | _ -> false
    in
    if not fast then begin
      f.f_fast <- false;
      f.f_mark <- m.jlen;
      step_impl m pid
    end

  let undo_frame m f =
    if f.f_fast then begin
      let pid = f.f_pid in
      m.time <- m.time - 1;
      m.steps.(pid) <- m.steps.(pid) - 1;
      (* a memo hit never faults or crashes: the only status a fast
         step can set is [Decided], so restoring [Running] is exact *)
      m.statuses.(pid) <- st_running;
      m.pcs.(pid) <- f.f_pc;
      Memory.Store.Arena.write_state m.arena f.f_loc f.f_old;
      m.last_valid <- false
    end
    else undo_to m f.f_mark

  (* Memo hits are always genuine store operations (only clean [Ok]
     transitions are memoized), so on the fast path there is always an
     event; the slow path defers to the machine's scratch. *)
  let frame_step_event m f = f.f_fast || m.last_valid
  let frame_loc m f = if f.f_fast then f.f_loc_name else m.last_loc

  let frame_loc_id m f =
    if f.f_fast then f.f_loc else Memory.Store.Arena.last_id m.arena
  let frame_op m f = if f.f_fast then f.f_op else m.last_op
  let frame_result m f = if f.f_fast then f.f_result else m.last_result
  let frame_old_state m f = if f.f_fast then f.f_old else last_old_state m
  let frame_new_state m f = if f.f_fast then f.f_new else last_new_state m

  (* Crash moves in a frame-based walk are a status flip both ways —
     identical to [walk_naive]'s crash handling, no journal entry.  The
     caller must only crash a currently-running process and must pair
     every [crash_frame] with an [uncrash_frame] on backtrack. *)
  let crash_frame m pid = m.statuses.(pid) <- st_crashed
  let uncrash_frame m pid = m.statuses.(pid) <- st_running

  (* Compact machine snapshots: the structural payload a visited-set
     entry needs to disambiguate hash collisions — store states in slot
     order plus per-process status — with an equality that compares the
     snapshot against the *live* machine, so a lookup hit materializes
     nothing.  Location names are deliberately absent: within one
     exploration the arena layout is fixed, so slot index [i] always
     denotes the same location and comparing values slotwise makes
     exactly the distinctions [Fingerprint.equal] makes on the sorted
     binding list. *)
  type snapshot = {
    sn_states : Value.t array;
    sn_statuses : int array;
    sn_decided : Value.t array;
    sn_faults : string array;
  }

  (* Plain copies: [decided]/[faults] slots of processes in other states
     carry stale values, but [snapshot_equal] only consults them behind
     the matching status code, so they never influence equality. *)
  let snapshot m =
    {
      sn_states = Array.copy (Memory.Store.Arena.states_view m.arena);
      sn_statuses = Array.copy m.statuses;
      sn_decided = Array.copy m.decided;
      sn_faults = Array.copy m.faults;
    }

  let snapshot_equal m s =
    let sarr = Memory.Store.Arena.states_view m.arena in
    let k = Array.length sarr in
    let n = Array.length m.statuses in
    Array.length s.sn_states = k
    && Array.length s.sn_statuses = n
    && (let rec states i =
          i >= k
          ||
          (* physical first: memoized transitions reinstall the same
             value blocks, so revisits usually share states physically *)
          (let a = Array.unsafe_get sarr i
           and b = Array.unsafe_get s.sn_states i in
           (a == b || Value.equal a b) && states (i + 1))
        in
        states 0)
    &&
    let rec procs i =
      i >= n
      ||
      let st = m.statuses.(i) in
      st = s.sn_statuses.(i)
      && (st <> st_decided || Value.equal m.decided.(i) s.sn_decided.(i))
      && (st <> st_faulty || String.equal m.faults.(i) s.sn_faults.(i))
      && procs (i + 1)
    in
    procs 0

  let access m pid =
    let pcv = m.pcs.(pid) in
    if pcv >= 0 then begin
      let cp = m.progs.(pid) in
      if Program.Compiled.is_done cp pcv then None
      else
        Some (Program.Compiled.loc_at cp pcv, Program.Compiled.read_at cp pcv)
    end
    else
      match m.prim_pcs.(pid) with
      | Program.Step (loc, op, _) -> Some (loc, Value.equal op read_sym)
      | Program.Done _ -> None

  (* [access] without the option/tuple allocation, for commutation
     checks in hot loops: [-1] = no pending access, [-2] = access on a
     location the store does not know (compare those by name via
     [access]; they fault when stepped, but until then they are real
     accesses), else [2 * slot lor read]. *)
  let access_enc m pid =
    let enc loc read =
      match Memory.Store.Arena.id_of_loc m.arena loc with
      | Some id -> (2 * id) lor Bool.to_int read
      | None -> -2
    in
    let pcv = m.pcs.(pid) in
    if pcv >= 0 then begin
      let cp = m.progs.(pid) in
      if Program.Compiled.is_done cp pcv then -1
      else begin
        (* a warm memo carries the interned slot — skip the name lookup *)
        let xa = m.memos.(pid) in
        let read = Program.Compiled.read_at cp pcv in
        if pcv < Array.length xa then
          match xa.(pcv) with
          | Some x -> (2 * x.x_loc) lor Bool.to_int read
          | None -> enc (Program.Compiled.loc_at cp pcv) read
        else enc (Program.Compiled.loc_at cp pcv) read
      end
    end
    else
      match m.prim_pcs.(pid) with
      | Program.Step (loc, op, _) -> enc loc (Value.equal op read_sym)
      | Program.Done _ -> -1

  let config m =
    let procs =
      Array.init (Array.length m.pcs) (fun pid ->
          {
            Proc.pid;
            prog =
              (let pcv = m.pcs.(pid) in
               if pcv >= 0 then Program.Compiled.prim_at m.progs.(pid) pcv
               else m.prim_pcs.(pid));
            steps = m.steps.(pid);
            status = status m pid;
          })
    in
    let trace = ref m.base_trace in
    for i = 0 to m.jlen - 1 do
      match m.journal.(i) with
      | J_event e ->
        trace :=
          {
            Trace.time = e.time;
            pid = e.pid;
            loc = e.loc;
            op = e.op;
            result = e.result;
          }
          :: !trace
      | J_status _ -> ()
    done;
    {
      store = Memory.Store.Arena.to_store m.arena;
      procs;
      time = m.time;
      trace = !trace;
    }

  let reports m = Array.map Program.Compiled.report m.progs

  let run ?(max_steps = 1_000_000) ~sched m =
    let rec go () =
      if m.time >= max_steps then outcome_of ~hit_step_limit:true (config m)
      else
        match enabled m with
        | [] -> outcome_of ~hit_step_limit:false (config m)
        | pids ->
          let pid =
            let tok = Lepower_prof.Phase.enter ph_choose in
            let pid = sched.Sched.choose ~time:m.time ~enabled:pids in
            Lepower_prof.Phase.leave tok;
            pid
          in
          if not (List.mem pid pids) then
            outcome_of ~hit_step_limit:false (config m)
          else begin
            sched.Sched.observe ~time:m.time ~pid;
            step m pid;
            go ()
          end
    in
    Obs.Metrics.incr m_runs;
    Obs.Span.with_span "engine.run"
      ~args:
        [
          ("procs", Obs.Json.Int (n_procs m));
          ("sched", Obs.Json.String sched.Sched.name);
        ]
      (fun () ->
        let outcome = go () in
        if Obs.Metrics.is_enabled () then
          Array.iter
            (fun (p : Proc.t) ->
              Obs.Metrics.observe h_steps_per_proc (Float.of_int p.Proc.steps))
            outcome.final.procs;
        outcome)
end

module Config_view = struct
  type impl =
    | V_config of config
    | V_machine of Machine.t
    | V_flat of Machine.t * (unit -> config)
        (* live machine driven by [Machine.walk_naive_checked]: flat
           accessors read the machine arrays directly, but the journal
           does not cover memo-hit steps, so anything trace-shaped must
           come from the replay thunk (the explorer replays the recorded
           move path from the walk's root configuration) *)

  type t = {
    impl : impl;
    mutable ordered : bool;
        (* set once any accessor exposing global trace order runs;
           [Explore.check_all]'s soundness guard reads it *)
    mutable cached_trace : Trace.t option;
    mutable cached_config : config option;
  }

  let of_config c =
    { impl = V_config c; ordered = false; cached_trace = None;
      cached_config = Some c }

  let of_machine m =
    { impl = V_machine m; ordered = false; cached_trace = None;
      cached_config = None }

  let of_machine_flat m ~replay =
    { impl = V_flat (m, replay); ordered = false; cached_trace = None;
      cached_config = None }

  let n_procs v =
    match v.impl with
    | V_config c -> Array.length c.procs
    | V_machine m | V_flat (m, _) -> Machine.n_procs m

  let time v =
    match v.impl with
    | V_config c -> c.time
    | V_machine m | V_flat (m, _) -> Machine.time m

  let status v pid =
    match v.impl with
    | V_config c -> c.procs.(pid).Proc.status
    | V_machine m | V_flat (m, _) -> Machine.status m pid

  let is_running v pid =
    match v.impl with
    | V_config c -> Proc.is_running c.procs.(pid)
    | V_machine m | V_flat (m, _) -> Machine.is_running m pid

  (* The per-pid accessors below are specialized per implementation
     rather than layered on [status]: checkers run them on every
     terminal of a walk, and the generic path would allocate a
     [Proc.status] per query on the machine backend. *)

  let has_running v =
    match v.impl with
    | V_config c ->
      let procs = c.procs in
      let n = Array.length procs in
      let rec go pid = pid < n && (Proc.is_running procs.(pid) || go (pid + 1)) in
      go 0
    | V_machine m | V_flat (m, _) ->
      let st = m.Machine.statuses in
      let n = Array.length st in
      let rec go pid =
        pid < n && (st.(pid) = Machine.st_running || go (pid + 1))
      in
      go 0

  let steps v pid =
    match v.impl with
    | V_config c -> c.procs.(pid).Proc.steps
    | V_machine m | V_flat (m, _) -> m.Machine.steps.(pid)

  (* [steps pid > 0] iff pid has a trace event: both backends record an
     event exactly when they increment [steps] (decide steps and
     store-rejected faults touch neither; a continuation type error
     records both).  This gives checkers the per-pid "took a
     shared-memory step" test without scanning the trace. *)
  let stepped v pid = steps v pid > 0

  let max_steps_per_proc v =
    let best = ref 0 in
    for pid = 0 to n_procs v - 1 do
      let s = steps v pid in
      if s > !best then best := s
    done;
    !best

  let over_step_bound v bound =
    match v.impl with
    | V_config c ->
      let procs = c.procs in
      let n = Array.length procs in
      let rec go pid =
        if pid >= n then None
        else
          let s = procs.(pid).Proc.steps in
          if s > bound then Some (pid, s) else go (pid + 1)
      in
      go 0
    | V_machine m | V_flat (m, _) ->
      let steps = m.Machine.steps in
      let n = Array.length steps in
      let rec go pid =
        if pid >= n then None
        else
          let s = steps.(pid) in
          if s > bound then Some (pid, s) else go (pid + 1)
      in
      go 0

  let decision v pid =
    match v.impl with
    | V_config c -> (
      match c.procs.(pid).Proc.status with
      | Proc.Decided x -> Some x
      | _ -> None)
    | V_machine m | V_flat (m, _) ->
      if m.Machine.statuses.(pid) = Machine.st_decided then
        Some m.Machine.decided.(pid)
      else None

  let decisions v =
    let acc = ref [] in
    for pid = n_procs v - 1 downto 0 do
      match decision v pid with
      | Some x -> acc := (pid, x) :: !acc
      | None -> ()
    done;
    !acc

  let decision_values v =
    match v.impl with
    | V_config c ->
      let acc = ref [] in
      for pid = Array.length c.procs - 1 downto 0 do
        match c.procs.(pid).Proc.status with
        | Proc.Decided x -> acc := x :: !acc
        | _ -> ()
      done;
      !acc
    | V_machine m | V_flat (m, _) ->
      let st = m.Machine.statuses in
      let acc = ref [] in
      for pid = Array.length st - 1 downto 0 do
        if st.(pid) = Machine.st_decided then
          acc := m.Machine.decided.(pid) :: !acc
      done;
      !acc

  (* First-decider (lowest-pid) order.  Scans the backing arrays
     directly — no intermediate [decision_values] list — because
     agreement checkers call this on every terminal of a walk; [acc]
     carries the distinct values seen so far in reverse, which stays
     tiny (1 for any agreeing terminal), so the [exists] is effectively
     constant and the final [rev] one cons in the common case. *)
  let distinct_decisions v =
    match v.impl with
    | V_config c ->
      let procs = c.procs in
      let n = Array.length procs in
      let rec go acc pid =
        if pid >= n then List.rev acc
        else
          match procs.(pid).Proc.status with
          | Proc.Decided x when not (List.exists (Value.equal x) acc) ->
            go (x :: acc) (pid + 1)
          | _ -> go acc (pid + 1)
      in
      go [] 0
    | V_machine m | V_flat (m, _) ->
      let st = m.Machine.statuses in
      let d = m.Machine.decided in
      let n = Array.length st in
      let rec go acc pid =
        if pid >= n then List.rev acc
        else if
          st.(pid) = Machine.st_decided
          && not (List.exists (Value.equal d.(pid)) acc)
        then go (d.(pid) :: acc) (pid + 1)
        else go acc (pid + 1)
      in
      go [] 0

  let faults v =
    match v.impl with
    | V_config c ->
      let acc = ref [] in
      for pid = Array.length c.procs - 1 downto 0 do
        match c.procs.(pid).Proc.status with
        | Proc.Faulty msg -> acc := (pid, msg) :: !acc
        | _ -> ()
      done;
      !acc
    | V_machine m | V_flat (m, _) ->
      let st = m.Machine.statuses in
      let acc = ref [] in
      for pid = Array.length st - 1 downto 0 do
        if st.(pid) = Machine.st_faulty then
          acc := (pid, m.Machine.faults.(pid)) :: !acc
      done;
      !acc

  let store_state v loc =
    match v.impl with
    | V_config c -> Memory.Store.peek c.store loc
    | V_machine m | V_flat (m, _) -> Memory.Store.Arena.peek m.Machine.arena loc

  let mem_loc v loc =
    match v.impl with
    | V_config c -> Memory.Store.peek c.store loc <> None
    | V_machine m | V_flat (m, _) -> Machine.mem_loc m loc

  let state_bindings v =
    match v.impl with
    | V_config c -> Memory.Store.state_bindings c.store
    | V_machine m | V_flat (m, _) -> Machine.state_bindings m

  (* Materialize the persistent configuration behind this view without
     marking an order access: the order-free projections of a flat view
     ([trace_length], [events_of]) need the replayed trace — the live
     machine's journal misses memo-hit steps — but exposing them must
     not trip the soundness guard. *)
  let materialize v =
    match v.cached_config with
    | Some c -> c
    | None ->
      let c =
        match v.impl with
        | V_config c -> c
        | V_machine m -> Machine.config m
        | V_flat (_, replay) -> replay ()
      in
      v.cached_config <- Some c;
      c

  let trace_length v =
    match v.impl with
    | V_config c -> List.length c.trace
    | V_flat _ -> List.length (materialize v).trace
    | V_machine m ->
      let n = ref (List.length m.Machine.base_trace) in
      for i = 0 to m.Machine.jlen - 1 do
        match m.Machine.journal.(i) with
        | Machine.J_event _ -> incr n
        | Machine.J_status _ -> ()
      done;
      !n

  let events_of v pid =
    (* Per-pid projection, chronological.  Deliberately does {e not}
       set [ordered]: a single process's own operations keep their
       relative order under any commutation of independent steps, so
       projections stay sound under dedup/POR. *)
    match v.impl with
    | V_config c ->
      List.rev
        (List.filter (fun (e : Trace.event) -> e.Trace.pid = pid) c.trace)
    | V_flat _ ->
      List.rev
        (List.filter
           (fun (e : Trace.event) -> e.Trace.pid = pid)
           (materialize v).trace)
    | V_machine m ->
      let base =
        List.rev
          (List.filter
             (fun (e : Trace.event) -> e.Trace.pid = pid)
             m.Machine.base_trace)
      in
      let acc = ref [] in
      for i = m.Machine.jlen - 1 downto 0 do
        match m.Machine.journal.(i) with
        | Machine.J_event e when e.pid = pid ->
          acc :=
            {
              Trace.time = e.time;
              pid = e.pid;
              loc = e.loc;
              op = e.op;
              result = e.result;
            }
            :: !acc
        | _ -> ()
      done;
      base @ !acc

  let order_accessed v = v.ordered

  let trace v =
    v.ordered <- true;
    match v.cached_trace with
    | Some t -> t
    | None ->
      let t =
        match v.impl with
        | V_config c -> List.rev c.trace
        | V_flat _ -> List.rev (materialize v).trace
        | V_machine m ->
          let rev = ref m.Machine.base_trace in
          for i = 0 to m.Machine.jlen - 1 do
            match m.Machine.journal.(i) with
            | Machine.J_event e ->
              rev :=
                {
                  Trace.time = e.time;
                  pid = e.pid;
                  loc = e.loc;
                  op = e.op;
                  result = e.result;
                }
                :: !rev
            | Machine.J_status _ -> ()
          done;
          List.rev !rev
      in
      v.cached_trace <- Some t;
      t

  let last_event v =
    v.ordered <- true;
    match v.impl with
    | V_config c -> (match c.trace with e :: _ -> Some e | [] -> None)
    | V_flat _ -> (
      match (materialize v).trace with e :: _ -> Some e | [] -> None)
    | V_machine m ->
      let rec scan i =
        if i < 0 then
          match m.Machine.base_trace with e :: _ -> Some e | [] -> None
        else
          match m.Machine.journal.(i) with
          | Machine.J_event e ->
            Some
              {
                Trace.time = e.time;
                pid = e.pid;
                loc = e.loc;
                op = e.op;
                result = e.result;
              }
          | Machine.J_status _ -> scan (i - 1)
      in
      scan (m.Machine.jlen - 1)

  let config v =
    v.ordered <- true;
    materialize v
end
