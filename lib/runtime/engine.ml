module Value = Memory.Value
module Obs = Lepower_obs

(* Instrumentation points (no-ops unless Lepower_obs.Metrics is enabled). *)
let m_steps = Obs.Metrics.counter "engine.steps"
let m_store_ops = Obs.Metrics.counter "engine.store_ops"
let m_cas_success = Obs.Metrics.counter "engine.cas_success"
let m_cas_failure = Obs.Metrics.counter "engine.cas_failure"
let m_faults = Obs.Metrics.counter "engine.faults"
let m_runs = Obs.Metrics.counter "engine.runs"
let h_steps_per_proc = Obs.Metrics.histogram "engine.steps_per_proc"

(* Phase attribution (no-ops unless Lepower_prof.Phase is enabled). *)
let ph_step = Lepower_prof.Phase.make "engine.step"
let ph_choose = Lepower_prof.Phase.make "sched.choose"

type config = {
  store : Memory.Store.t;
  procs : Proc.t array;
  time : int;
  trace : Trace.event list;
}

let init store progs =
  let procs = List.mapi (fun pid prog -> Proc.make ~pid prog) progs in
  { store; procs = Array.of_list procs; time = 0; trace = [] }

let enabled config =
  let acc = ref [] in
  for i = Array.length config.procs - 1 downto 0 do
    if Proc.is_running config.procs.(i) then acc := i :: !acc
  done;
  !acc

let set_proc config pid proc =
  let procs = Array.copy config.procs in
  procs.(pid) <- proc;
  { config with procs }

let step_impl config pid =
  let proc = config.procs.(pid) in
  if not (Proc.is_running proc) then config
  else begin
    Obs.Metrics.incr m_steps;
    match proc.Proc.prog with
    | Program.Done v ->
      set_proc config pid { proc with status = Proc.Decided v }
    | Program.Step (loc, o, k) -> (
      match Memory.Store.apply config.store ~pid loc o with
      | Error msg ->
        Obs.Metrics.incr m_faults;
        set_proc config pid { proc with status = Proc.Faulty msg }
      | Ok (store, result) ->
        if Obs.Metrics.is_enabled () then begin
          Obs.Metrics.incr m_store_ops;
          (* A compare&swap succeeds iff it returns its expected value and
             actually changes the state (the alphabet-reading cas with
             expected = desired is a read, not a successful swap). *)
          match o with
          | Value.Pair (Value.Sym "cas", Value.Pair (expected, desired)) ->
            if Value.equal result expected && not (Value.equal expected desired)
            then Obs.Metrics.incr m_cas_success
            else Obs.Metrics.incr m_cas_failure
          | _ -> ()
        end;
        let event = { Trace.time = config.time; pid; loc; op = o; result } in
        let proc' =
          match k result with
          | exception Value.Type_error (want, got) ->
            Obs.Metrics.incr m_faults;
            {
              proc with
              Proc.status =
                Proc.Faulty
                  (Printf.sprintf "type error: expected %s, got %s" want
                     (Value.to_string got));
              steps = proc.Proc.steps + 1;
            }
          | Program.Done v ->
            {
              proc with
              Proc.prog = Program.Done v;
              status = Proc.Decided v;
              steps = proc.Proc.steps + 1;
            }
          | next ->
            { proc with Proc.prog = next; steps = proc.Proc.steps + 1 }
        in
        let config = set_proc config pid proc' in
        { config with store; time = config.time + 1; trace = event :: config.trace })
  end

let step config pid =
  let tok = Lepower_prof.Phase.enter ph_step in
  let config' = step_impl config pid in
  Lepower_prof.Phase.leave tok;
  config'

let step_lost config pid =
  (* Lost-write fault: the process takes its step — response computed
     against the pre-state, continuation advanced, trace event recorded,
     clock ticked — but the store keeps its pre-step states, so any write
     the operation performed evaporates.  The process cannot tell. *)
  let config' = step config pid in
  { config' with store = config.store }

let crash config pid =
  let proc = config.procs.(pid) in
  if Proc.is_running proc then
    set_proc config pid { proc with Proc.status = Proc.Crashed }
  else config

let trace config = List.rev config.trace

type outcome = {
  final : config;
  decisions : (int * Value.t) list;
  faults : (int * string) list;
  crashes : int list;
  steps : int;
  hit_step_limit : bool;
}

let outcome_of ~hit_step_limit config =
  let decisions = ref [] and faults = ref [] and crashes = ref [] in
  Array.iter
    (fun (p : Proc.t) ->
      match p.Proc.status with
      | Proc.Decided v -> decisions := (p.Proc.pid, v) :: !decisions
      | Proc.Faulty m -> faults := (p.Proc.pid, m) :: !faults
      | Proc.Crashed -> crashes := p.Proc.pid :: !crashes
      | Proc.Running -> ())
    config.procs;
  {
    final = config;
    decisions = List.rev !decisions;
    faults = List.rev !faults;
    crashes = List.rev !crashes;
    steps = config.time;
    hit_step_limit;
  }

let run ?(max_steps = 1_000_000) ~sched config =
  let rec go config =
    if config.time >= max_steps then outcome_of ~hit_step_limit:true config
    else
      match enabled config with
      | [] -> outcome_of ~hit_step_limit:false config
      | pids ->
        let pid =
          let tok = Lepower_prof.Phase.enter ph_choose in
          let pid = sched.Sched.choose ~time:config.time ~enabled:pids in
          Lepower_prof.Phase.leave tok;
          pid
        in
        (* [Sched.halt] — or, defensively, any pid outside the enabled
           set, which would otherwise no-op-step forever — ends the run
           with every process left in its current status. *)
        if not (List.mem pid pids) then
          outcome_of ~hit_step_limit:false config
        else begin
          sched.Sched.observe ~time:config.time ~pid;
          go (step config pid)
        end
  in
  Obs.Metrics.incr m_runs;
  Obs.Span.with_span "engine.run"
    ~args:
      [
        ("procs", Obs.Json.Int (Array.length config.procs));
        ("sched", Obs.Json.String sched.Sched.name);
      ]
    (fun () ->
      let outcome = go config in
      if Obs.Metrics.is_enabled () then
        Array.iter
          (fun (p : Proc.t) ->
            Obs.Metrics.observe h_steps_per_proc (Float.of_int p.Proc.steps))
          outcome.final.procs;
      outcome)

let distinct_decisions outcome =
  List.fold_left
    (fun acc (_, v) -> if List.exists (Value.equal v) acc then acc else v :: acc)
    [] outcome.decisions
  |> List.rev

let max_steps_per_proc outcome =
  Array.fold_left
    (fun acc (p : Proc.t) -> max acc p.Proc.steps)
    0 outcome.final.procs
