(** Adversarial-schedule fuzzing: find schedule-dependent violations by
    randomized search instead of exhaustive DFS.

    [Explore] proves small instances correct; this module attacks large
    ones.  A {b campaign} replays a subject from a fresh configuration
    under a seeded adversarial scheduler — uniform random walk, PCT
    priority scheduling ({!Sched.pct}), or a starvation adversary
    ({!Sched.starve}) — optionally injecting faults from a
    {!Faults.plan}, until a user predicate flags a violating final
    configuration or the run budget is exhausted.

    Everything is deterministic in the seed: run [i] of a campaign uses
    [seed + i] for both the scheduler and the fault rolls, and every
    decision — scheduling choices {e and} injected faults — is logged in
    {!Repro.decision} form.  A violation therefore ships as an ordinary
    {!Repro} certificate (auto-shrunk with {!Repro.shrink} by default)
    that [lepower replay] reproduces bit for bit, faults re-injected.

    Producers live above: [Protocols.Election.fuzz] fuzzes an election
    instance, [Lepower_check.Lint.fuzz_target] any lint target, and the
    [lepower fuzz] CLI fronts both.

    Observability: a ["fuzz.campaign"] span plus [fuzz.runs],
    [fuzz.violations] and [faults.injected] counters (all no-ops unless
    metrics are enabled). *)

(** Which adversarial scheduler drives each run. *)
type sched_kind =
  | Random_walk  (** uniform over enabled pids ({!Sched.random}) *)
  | Pct of { depth : int }
      (** PCT with [depth - 1] priority-change points ({!Sched.pct}) *)
  | Starve of { victim : int; stall : int }
      (** random walk, but [victim] is withheld for the first [stall]
          executed steps ({!Sched.starve}) *)

val kind_name : sched_kind -> string
(** ["random"], ["pct"] or ["starve"] — the CLI's [--sched] values. *)

val instantiate : sched_kind -> seed:int -> max_steps:int -> Sched.t
(** The concrete scheduler a run with this seed uses (fresh state). *)

(** One fuzz run.  [decisions] is the complete adversary log, oldest
    first, faults included; [injected] counts the fault decisions in it;
    [sched_name] is the instantiated scheduler's name prefixed with
    ["fuzz:"] (recorded in certificates). *)
type run = {
  final : Engine.config;
  decisions : Repro.decision list;
  sched_name : string;
  injected : int;
  hit_step_limit : bool;
}

val run :
  ?max_steps:int ->
  ?plan:Faults.plan ->
  ?backend:Engine.backend ->
  kind:sched_kind ->
  seed:int ->
  Engine.config ->
  run
(** One deterministic adversarial run: at each decision point
    {!Faults.decide} rolls for an injection (plan defaults to
    {!Faults.none}) and otherwise consults the scheduler; the decision
    is executed with {!Faults.apply} and logged.  [observe] fires for
    every decision that scheduled a process — lost writes included, the
    scheduler cannot tell them apart any better than the process can.
    Stops when no process is running, the scheduler halts, or [max_steps]
    (default 1000) store operations have run.  Same [seed] (with equal
    [kind]/[plan]/[max_steps] and initial configuration) ⇒ identical
    decision log, on {e either} backend ([Persistent] default;
    [Arena] drives an {!Engine.Machine} and makes the same rng and
    scheduler calls in the same order). *)

(** Live campaign progress, delivered to [campaign]'s [?progress] once
    per completed run: totals so far plus the configured run budget, the
    inputs a heartbeat needs for rates and ETA. *)
type progress = {
  p_run : int;  (** runs completed so far *)
  p_runs_total : int;
  p_injected : int;
  p_steps : int;
}

(** Campaign verdict.  [runs] is how many runs executed (the campaign
    stops at the first violation, so this is the time-to-first-violation
    in runs); [steps] counts all decisions across them; [cert] carries
    the first violation's certificate, shrunk when requested, with the
    predicate's message also in [message]. *)
type outcome = {
  runs : int;
  first_violation : int option;  (** 0-based index of the violating run *)
  injected : int;
  steps : int;
  cert : Repro.t option;
  shrink : Repro.shrink_stats option;
  message : string option;
}

val campaign :
  ?runs:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?plan:Faults.plan ->
  ?kind:sched_kind ->
  ?shrink:bool ->
  ?subject:Lepower_obs.Json.t ->
  ?backend:Engine.backend ->
  ?progress:(progress -> unit) ->
  failing:(Engine.Config_view.t -> string option) ->
  (unit -> Engine.config) ->
  outcome
(** [campaign ~failing fresh] runs up to [runs] (default 256) fuzz runs,
    run [i] from [fresh ()] with seed [seed + i] (base default 1), and
    stops at the first final state for which [failing] returns a
    message.  The predicate reads the final state through an
    {!Engine.Config_view.t}: on the arena backend non-violating runs
    never materialize a persistent configuration — the view serves the
    predicate from the machine's flat arrays, and a full configuration
    is only built when a certificate or violation report needs one.
    Defaults: [max_steps 1000], [plan] {!Faults.none},
    [kind] [Pct {depth = 3}], [shrink true], [backend] [Persistent].
    The certificate embeds [subject] so [lepower replay] can rebuild
    the instance.  Equal seeds yield equal certificates across
    backends (see {!run}). *)
