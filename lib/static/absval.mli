(** Abstract value domain for the effect-summary interpreter.

    An abstract value over-approximates the set of concrete {!Memory.Value}
    states a location may hold: either a finite set, or ⊤ (any value) once
    a configurable cardinality cap is passed.  Widening to ⊤ keeps the
    fixpoint computation in {!Absint} finite on objects whose state grows
    without bound (append-only logs, queues). *)

module Value := Memory.Value

type t
(** A finite set of values, or ⊤. *)

val empty : t
(** The empty set — the bottom of the domain. *)

val top : t
(** ⊤: every value. *)

val singleton : Value.t -> t

val add : cap:int -> Value.t -> t -> t
(** [add ~cap v a] adds [v]; the result widens to ⊤ when its cardinality
    would exceed [cap]. *)

val join : cap:int -> t -> t -> t
(** Set union, widening to ⊤ past [cap]. *)

val mem : Value.t -> t -> bool
(** Abstract membership — always [true] on ⊤. *)

val cardinal : t -> int option
(** [None] on ⊤. *)

val is_top : t -> bool

val elements : t -> Value.t list option
(** The concrete values, sorted; [None] on ⊤. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
