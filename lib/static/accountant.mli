(** The register accountant: how many shared objects a protocol actually
    needs, counted from static footprints.

    The paper's constructions are measured in the number (and size) of
    bounded registers they consume; the accountant reports the static
    footprint of each process and of the whole protocol, and flags
    bindings no process can ever touch (allocated but unreachable). *)

type t = {
  per_pid : (int * int) list;  (** pid, footprint size; pid order *)
  total : int;  (** distinct locations in the union of all footprints *)
  bound : int;  (** locations the store actually binds *)
  unused : string list;
      (** bound locations outside every process's footprint, sorted *)
}

val count : bindings:(string * Memory.Spec.t) list -> Summary.t -> t

val over_budget : t -> budget:int -> bool
(** [total > budget]. *)

val pp : Format.formatter -> t -> unit
