module Value = Memory.Value
module Trace = Runtime.Trace
module Op_codec = Objects.Op_codec
module Sset = Summary.Sset

let check ~store summary trace =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let by_pid = Array.of_list summary.Summary.per_pid in
  let diverged : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let check_state loc state =
    match Summary.sigma_of summary loc with
    | Some sigma when Absval.mem state sigma -> ()
    | Some _ ->
      add "state %s of %s is outside Σ̂" (Value.to_string state) loc
    | None -> add "location %s is outside Σ̂'s domain" loc
  in
  let st = ref store in
  List.iter
    (fun (e : Trace.event) ->
      let pid = e.Trace.pid and loc = e.Trace.loc in
      (match
         if pid >= 0 && pid < Array.length by_pid then Some by_pid.(pid)
         else None
       with
      | None -> add "t=%d event by unknown p%d" e.Trace.time pid
      | Some p ->
        let mutates = Op_codec.is_mutation (Op_codec.classify e.Trace.op) in
        if not (Sset.mem loc (Summary.footprint p)) then
          add "t=%d p%d touched %s outside its static footprint" e.Trace.time
            pid loc
        else if mutates && not (Sset.mem loc p.Summary.may_write) then
          add "t=%d p%d mutated %s outside its may-write set" e.Trace.time pid
            loc);
      if not (Hashtbl.mem diverged loc) then
        match Memory.Store.apply !st ~pid loc e.Trace.op with
        | Error _ ->
          (* Replay divergence (faults, lost writes): the dynamic lint
             reports it; we just stop judging this location's states. *)
          Hashtbl.replace diverged loc ()
        | Ok (st', result) ->
          if not (Value.equal result e.Trace.result) then
            Hashtbl.replace diverged loc ()
          else begin
            st := st';
            Option.iter (check_state loc) (Memory.Store.peek st' loc)
          end)
    trace;
  List.rev !violations
