module Value = Memory.Value
module Spec = Memory.Spec
module Program = Runtime.Program
module Op_codec = Objects.Op_codec
module Vset = Set.Make (Value)
module Sset = Summary.Sset

type options = {
  value_cap : int;
  depth_cap : int;
  node_cap : int;
  max_passes : int;
}

let default_options =
  { value_cap = 12; depth_cap = 64; node_cap = 50_000; max_passes = 8 }

(* Mutable per-process accumulator; monotone across fixpoint passes. *)
type acc = {
  mutable reads : Sset.t;
  mutable writes : Sset.t;
  written : (string, Absval.t) Hashtbl.t;
  mutable deepest : int;
  mutable terminates : bool;
  mutable depth_capped : bool;
  mutable node_capped : bool;
  mutable pass_nodes : int;
}

let fresh_acc () =
  {
    reads = Sset.empty;
    writes = Sset.empty;
    written = Hashtbl.create 8;
    deepest = 0;
    terminates = false;
    depth_capped = false;
    node_capped = false;
    pass_nodes = 0;
  }

let analyze ?(options = default_options) ~bindings programs =
  let store = Memory.Store.create bindings in
  (* The pooled abstract store: every state any process's walk has ever
     produced, seeded lazily with initial values (the same shape as
     [Waitfree_check.store_responder]'s pool).  [version] bumps on growth
     so the fixpoint loop can detect convergence. *)
  let pool : (string, Vset.t) Hashtbl.t = Hashtbl.create 16 in
  let widened : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let version = ref 0 in
  let total_nodes = ref 0 in
  let states loc =
    match Hashtbl.find_opt pool loc with
    | Some s -> s
    | None ->
      let s =
        match Memory.Store.peek store loc with
        | Some init -> Vset.singleton init
        | None -> Vset.empty
      in
      Hashtbl.replace pool loc s;
      s
  in
  let pool_add loc state' =
    let s = states loc in
    if not (Vset.mem state' s) then
      if Vset.cardinal s >= options.value_cap then
        (* Stop growing the pool (keeps the fixpoint finite); the location
           reports ⊤ in Σ̂ and the summary is marked incomplete. *)
        Hashtbl.replace widened loc ()
      else begin
        Hashtbl.replace pool loc (Vset.add state' s);
        incr version
      end
  in
  let walk pid (a : acc) prog =
    a.pass_nodes <- 0;
    let rec go prog depth =
      if depth > a.deepest then a.deepest <- depth;
      match prog with
      | Program.Done _ -> a.terminates <- true
      | Program.Step (loc, op, k) ->
        if depth >= options.depth_cap then a.depth_capped <- true
        else begin
          let mutates = Op_codec.is_mutation (Op_codec.classify op) in
          if mutates then a.writes <- Sset.add loc a.writes
          else a.reads <- Sset.add loc a.reads;
          match Memory.Store.spec_of store loc with
          | None -> () (* unknown location: the engine faults the process *)
          | Some spec ->
            let responses = ref Vset.empty in
            Vset.iter
              (fun state ->
                match Spec.apply spec ~pid state op with
                | Error _ -> ()
                | Ok (state', resp) ->
                  pool_add loc state';
                  if mutates then begin
                    let w =
                      Option.value ~default:Absval.empty
                        (Hashtbl.find_opt a.written loc)
                    in
                    Hashtbl.replace a.written loc
                      (Absval.add ~cap:options.value_cap state' w)
                  end;
                  responses := Vset.add resp !responses)
              (states loc);
            Vset.iter
              (fun resp ->
                if not a.node_capped then begin
                  a.pass_nodes <- a.pass_nodes + 1;
                  incr total_nodes;
                  if a.pass_nodes > options.node_cap then a.node_capped <- true
                  else
                    match k resp with
                    | exception _ ->
                      (* Same contract as the wait-freedom auditor: a
                         raising continuation either faults the process or
                         only arises from pooled state combinations no real
                         execution produces; the path ends here. *)
                      ()
                    | next -> go next (depth + 1)
                end)
              !responses
        end
    in
    go prog 0
  in
  let n = List.length programs in
  let accs = Array.init n (fun _ -> fresh_acc ()) in
  let passes = ref 0 in
  let converged = ref false in
  (try
     for _ = 1 to options.max_passes do
       incr passes;
       let v0 = !version in
       List.iteri (fun pid prog -> walk pid accs.(pid) prog) programs;
       if !version = v0 then begin
         converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  let limits = ref [] in
  let limit fmt = Printf.ksprintf (fun s -> limits := s :: !limits) fmt in
  if not !converged then limit "passes-cap:%d" options.max_passes;
  Hashtbl.iter (fun loc () -> limit "value-cap:%s" loc) widened;
  Array.iteri
    (fun pid a ->
      if a.depth_capped then limit "depth-cap:p%d" pid;
      if a.node_capped then limit "node-cap:p%d" pid)
    accs;
  let limits = List.sort compare !limits in
  let sigma =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map
         (fun loc ->
           if Hashtbl.mem widened loc then (loc, Absval.top)
           else
             ( loc,
               Vset.fold
                 (fun v a -> Absval.add ~cap:options.value_cap v a)
                 (states loc) Absval.empty ))
         (Memory.Store.locs store))
  in
  let per_pid =
    List.init n (fun pid ->
        let a = accs.(pid) in
        {
          Summary.pid;
          may_read = a.reads;
          may_write = a.writes;
          written =
            List.sort
              (fun (x, _) (y, _) -> String.compare x y)
              (Hashtbl.fold (fun l v l' -> (l, v) :: l') a.written []);
          op_bound =
            (if a.depth_capped then Summary.Unbounded
             else Summary.Bounded a.deepest);
          terminates = a.terminates;
          node_capped = a.node_capped;
        })
  in
  {
    Summary.per_pid;
    sigma;
    complete = limits = [];
    passes = !passes;
    nodes = !total_nodes;
    limits;
  }
