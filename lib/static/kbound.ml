type cert = {
  loc : string;
  type_name : string;
  khat : int option;
  non_init : int option;
  bound : int option;
  violated : bool;
}

(* "cas(7)" -> Some 7 (same parse as [Bounded_check.cas_size]). *)
let cas_size type_name =
  if String.length type_name > 5 && String.sub type_name 0 4 = "cas(" then
    int_of_string_opt (String.sub type_name 4 (String.length type_name - 5))
  else None

let certify ?(bounds = []) ~bindings summary =
  List.map
    (fun (loc, (spec : Memory.Spec.t)) ->
      let type_name = spec.Memory.Spec.type_name in
      let sigma =
        Option.value ~default:Absval.empty (Summary.sigma_of summary loc)
      in
      let khat = Absval.cardinal sigma in
      let non_init =
        match khat with
        | None -> None
        | Some k ->
          Some (if Absval.mem spec.Memory.Spec.init sigma then k - 1 else k)
      in
      let declared = List.assoc_opt loc bounds in
      let intrinsic = cas_size type_name in
      let bound =
        match (declared, intrinsic) with
        | Some k, _ -> Some k
        | None, Some k -> Some k
        | None, None -> None
      in
      let violated =
        match (bound, intrinsic) with
        | None, _ -> false
        | Some k, Some _ ->
          (* cas alphabet: ⊥ plus k−1 symbols. *)
          (match non_init with Some c -> c > k - 1 | None -> false)
        | Some k, None ->
          (* Declared bound on a type without an intrinsic alphabet counts
             every distinct value, initial included. *)
          (match khat with Some c -> c > k | None -> false)
      in
      { loc; type_name; khat; non_init; bound; violated })
    bindings
