module Value = Memory.Value
module Vset = Set.Make (Value)

type t = Top | Set of Vset.t

let empty = Set Vset.empty
let top = Top
let singleton v = Set (Vset.singleton v)

let widen ~cap = function
  | Top -> Top
  | Set s when Vset.cardinal s > cap -> Top
  | a -> a

let add ~cap v = function
  | Top -> Top
  | Set s -> widen ~cap (Set (Vset.add v s))

let join ~cap a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Set x, Set y -> widen ~cap (Set (Vset.union x y))

let mem v = function Top -> true | Set s -> Vset.mem v s
let cardinal = function Top -> None | Set s -> Some (Vset.cardinal s)
let is_top = function Top -> true | Set _ -> false
let elements = function Top -> None | Set s -> Some (Vset.elements s)

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Set x, Set y -> Vset.equal x y
  | Top, Set _ | Set _, Top -> false

let pp ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Set s ->
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ", ") Value.pp)
      (Vset.elements s)
