module Sset = Summary.Sset

type t = {
  per_pid : (int * int) list;
  total : int;
  bound : int;
  unused : string list;
}

let count ~bindings summary =
  let union = Summary.protocol_footprint summary in
  {
    per_pid =
      List.map
        (fun (p : Summary.per_pid) ->
          (p.Summary.pid, Summary.register_count p))
        summary.Summary.per_pid;
    total = Sset.cardinal union;
    bound = List.length bindings;
    unused =
      List.filter_map
        (fun (loc, _) -> if Sset.mem loc union then None else Some loc)
        bindings
      |> List.sort String.compare;
  }

let over_budget t ~budget = t.total > budget

let pp ppf t =
  Fmt.pf ppf "%d registers (%d bound%s) — per process: %a" t.total t.bound
    (match t.unused with
    | [] -> ""
    | u -> Printf.sprintf ", %d unused" (List.length u))
    Fmt.(list ~sep:(any ", ") (fun ppf (p, c) -> pf ppf "p%d:%d" p c))
    t.per_pid
