(** Static k-bound certificates.

    The dynamic bounded-value lint ({!Lepower_check.Bounded_check})
    certifies one execution's value timeline; this module certifies the
    {e abstract} store Σ̂ of a {!Summary.t} against the same bounds — over
    every execution at once, without running any.  The counting mirrors
    the dynamic rule exactly: a [cas(k)] location may hold at most [k−1]
    distinct non-⊥ values (⊥ being its initial state), and a location
    with only a declared bound [k] may hold at most [k] distinct values,
    initial included. *)

type cert = {
  loc : string;
  type_name : string;
  khat : int option;
      (** distinct abstract states, initial value included; [None] = ⊤ *)
  non_init : int option;
      (** distinct abstract states other than the initial value *)
  bound : int option;
      (** the effective bound: a declared bound, else the [cas(k)]
          alphabet size; [None] when the type promises nothing *)
  violated : bool;
      (** the abstract state count provably exceeds the bound (a real
          over-approximated count, so with a {!Summary.t.complete} summary
          this means {e some} schedule can exceed it — and with an
          incomplete one it is still a genuine set of producible states) *)
}

val certify :
  ?bounds:(string * int) list ->
  bindings:(string * Memory.Spec.t) list ->
  Summary.t ->
  cert list
(** One certificate per binding, in binding order.  [bounds] declares (or,
    for [cas(k)] types, overrides) a location's bound — the same contract
    as {!Lepower_check.Bounded_check.check}. *)
