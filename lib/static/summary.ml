module Sset = Set.Make (String)

type op_bound = Bounded of int | Unbounded

type per_pid = {
  pid : int;
  may_read : Sset.t;
  may_write : Sset.t;
  written : (string * Absval.t) list;
  op_bound : op_bound;
  terminates : bool;
  node_capped : bool;
}

type t = {
  per_pid : per_pid list;
  sigma : (string * Absval.t) list;
  complete : bool;
  passes : int;
  nodes : int;
  limits : string list;
}

let footprint p = Sset.union p.may_read p.may_write
let register_count p = Sset.cardinal (footprint p)

let protocol_footprint t =
  List.fold_left (fun acc p -> Sset.union acc (footprint p)) Sset.empty t.per_pid

let protocol_register_count t = Sset.cardinal (protocol_footprint t)
let sigma_of t loc = List.assoc_opt loc t.sigma
let written_of p loc = List.assoc_opt loc p.written

let khat t loc =
  match sigma_of t loc with
  | None -> Some 0
  | Some a -> Absval.cardinal a

let footprints t =
  if not t.complete then None
  else
    Some
      (Array.of_list
         (List.map
            (fun p -> (Sset.elements p.may_read, Sset.elements p.may_write))
            t.per_pid))

let pp_op_bound ppf = function
  | Bounded b -> Fmt.pf ppf "≤ %d ops" b
  | Unbounded -> Fmt.string ppf "unbounded"

let pp_locs ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) (Sset.elements s)

let pp_per_pid ppf p =
  Fmt.pf ppf "p%d: reads %a, writes %a, %a%s%s" p.pid pp_locs p.may_read
    pp_locs p.may_write pp_op_bound p.op_bound
    (if p.terminates then "" else ", no terminating path")
    (if p.node_capped then ", node-capped" else "")

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,Σ̂: %a@,%s (%d passes, %d nodes)%a@]"
    Fmt.(list ~sep:(any "@,") pp_per_pid)
    t.per_pid
    Fmt.(
      list ~sep:(any "; ") (fun ppf (l, a) -> Fmt.pf ppf "%s=%a" l Absval.pp a))
    t.sigma
    (if t.complete then "complete" else "incomplete")
    t.passes t.nodes
    Fmt.(
      if t.limits = [] then nop
      else fun ppf () ->
        pf ppf "@,limits: %a" (list ~sep:(any ", ") string) t.limits)
    ()
