(** Effect-summary abstract interpretation over step programs.

    The interpreter walks each process's {!Runtime.Program.prim} tree the
    way {!Lepower_check.Waitfree_check} does — it cannot enumerate a
    continuation's branches without feeding it responses, so it feeds
    every response the object's sequential spec can produce from a
    {e pooled} abstract store (every state the analysis has ever seen any
    process produce, initial values included).  The pool is shared across
    processes and passes; walks repeat until the pool stops growing
    (a fixpoint) or {!options.max_passes} is hit.

    The pooled store over-approximates every concrete execution by
    induction: initially it holds exactly the initial states, and any
    operation a real schedule could perform is applied here from a
    superset of the states it could see, so its produced state and
    response are pooled too.  Hence, when the fixpoint converges with no
    cap hit ({!Summary.t.complete}), the summary's may-sets and Σ̂ contain
    every location / state a real execution can touch or produce.

    Three caps keep the walk finite, and hitting {e any} of them clears
    [complete]:

    - [value_cap]: per-location pooled-state cardinality; past it the
      location widens to ⊤ in Σ̂ (unbounded-state objects: logs, queues);
    - [depth_cap]: operations along one path; past it the process is
      [Unbounded] (syntactic retry loop);
    - [node_cap]: interpreter nodes per process per pass (defence against
      exponential response fan-out). *)

type options = {
  value_cap : int;  (** abstract states per location before ⊤ (default 12) *)
  depth_cap : int;  (** ops along one path before [Unbounded] (default 64) *)
  node_cap : int;  (** nodes per process per pass (default 50_000) *)
  max_passes : int;  (** fixpoint iteration cap (default 8) *)
}

val default_options : options

val analyze :
  ?options:options ->
  bindings:(string * Memory.Spec.t) list ->
  Runtime.Program.prim list ->
  Summary.t
(** [analyze ~bindings programs] — processes get pids [0 .. n-1] in list
    order, mirroring {!Runtime.Engine.init}.  Pure: runs no schedule,
    touches no engine state. *)
