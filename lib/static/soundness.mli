(** Soundness cross-check: a concrete execution must stay inside its
    protocol's effect summary.

    Used two ways: as a lint-time validation of every explored/fuzzed
    execution against the static analysis (a violation means the abstract
    interpreter is wrong — the strongest regression test the analyzer
    has), and as the executable statement of the summary's
    over-approximation contract ({!Summary}).

    Per trace event: the location must lie in the acting process's static
    footprint, and a mutating operation's location in its may-write set.
    The trace is then replayed through the sequential specs (the same
    replay {!Lepower_check.Bounded_check.check} performs) and every state
    an operation produces must lie in Σ̂.  Replay divergence is {e not}
    reported here — that is the dynamic lint's job; the replay simply
    stops following a location whose replay diverged. *)

val check :
  store:Memory.Store.t -> Summary.t -> Runtime.Trace.t -> string list
(** [check ~store summary trace] — [store] must be the {e pre-run} store;
    [trace] oldest-first (as {!Runtime.Engine.trace} returns).  Returns
    human-readable violations, [[]] when the execution is inside the
    summary.  Only meaningful when the summary is {!Summary.t.complete}
    — callers gate on it. *)
