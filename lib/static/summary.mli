(** Effect summaries: what a protocol {e may} do, computed without running
    a single schedule.

    A summary is the output of {!Absint.analyze}: per-process may-read /
    may-write location sets, an abstract written-value map, a syntactic
    operation bound, plus a protocol-level abstract store Σ̂ mapping every
    location to the set of states it may ever hold (initial value
    included).

    {b Soundness contract.}  When {!t.complete} is [true] the analysis
    reached a fixpoint with no cap hit, and the summary over-approximates
    every concrete execution: each trace event's location lies in the
    acting process's footprint, mutations lie in its may-write set, and
    every store state ever reached lies in Σ̂ ({!Soundness.check} verifies
    this on real executions).  When [complete] is [false] the sets are
    best-effort evidence — still useful for presence facts (a process
    {e was seen} writing a location) but not for certificates. *)

module Sset : Set.S with type elt = string

(** Static operation bound of one process: the deepest chain of
    shared-memory operations the interpreter walked, or [Unbounded] when
    the depth cap was hit (a syntactic retry loop). *)
type op_bound = Bounded of int | Unbounded

type per_pid = {
  pid : int;
  may_read : Sset.t;  (** locations a non-mutating operation may touch *)
  may_write : Sset.t;  (** locations a mutating operation may touch *)
  written : (string * Absval.t) list;
      (** per-location abstraction of the states {e this} process's
          mutations may produce (sorted by location) *)
  op_bound : op_bound;
  terminates : bool;
      (** some path reached [Done] under the pooled responder *)
  node_capped : bool;
      (** the per-pass node cap cut this process's walk — paths exist
          that the interpreter never saw *)
}

type t = {
  per_pid : per_pid list;  (** pid order *)
  sigma : (string * Absval.t) list;
      (** Σ̂: every store location's abstract state set, initial value
          included (sorted by location) *)
  complete : bool;
      (** fixpoint reached with no value/depth/node cap hit anywhere *)
  passes : int;  (** fixpoint iterations run *)
  nodes : int;  (** total interpreter nodes visited, all passes *)
  limits : string list;
      (** which caps were hit, e.g. ["value-cap:log.0"; "depth-cap:p1"] —
          empty iff [complete] *)
}

val footprint : per_pid -> Sset.t
(** may-read ∪ may-write. *)

val register_count : per_pid -> int
(** Size of the process's static footprint — the registers it needs. *)

val protocol_footprint : t -> Sset.t
val protocol_register_count : t -> int

val sigma_of : t -> string -> Absval.t option
val written_of : per_pid -> string -> Absval.t option

val khat : t -> string -> int option
(** [khat t loc] — the static bound k̂ on distinct states of [loc]:
    [Some 0] for an unknown location, [None] when widened to ⊤. *)

val footprints : t -> (string list * string list) array option
(** Per-pid (may-read, may-write) location lists, indexed by pid — the
    shape {!Runtime.Explore.Options} accepts for the summary-seeded POR
    fast path.  [None] unless the summary is {!t.complete}: an incomplete
    footprint could under-approximate, and feeding it to the explorer
    would prune dependent interleavings. *)

val pp_op_bound : Format.formatter -> op_bound -> unit
val pp_per_pid : Format.formatter -> per_pid -> unit
val pp : Format.formatter -> t -> unit
