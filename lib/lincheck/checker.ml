module Value = Memory.Value

let m_checks = Lepower_obs.Metrics.counter "lincheck.checks"
let m_memo_hits = Lepower_obs.Metrics.counter "lincheck.memo_hits"
let m_memo_misses = Lepower_obs.Metrics.counter "lincheck.memo_misses"

type result =
  | Linearizable of History.operation list
  | Not_linearizable

module Key = struct
  type t = bool array * Value.t

  let equal (d1, s1) (d2, s2) = d1 = d2 && Value.equal s1 s2
  let hash (d, s) = Hashtbl.hash (d, Value.hash s)
end

module Memo = Hashtbl.Make (Key)

let check ~spec history =
  Lepower_obs.Metrics.incr m_checks;
  Lepower_obs.Span.with_span "lincheck.check"
    ~args:[ ("ops", Lepower_obs.Json.Int (List.length history)) ]
  @@ fun () ->
  let ops = Array.of_list history in
  let n = Array.length ops in
  let done_ = Array.make n false in
  let visited = Memo.create 64 in
  (* An operation is schedulable next if every operation that responded
     before its invocation is already placed. *)
  let precedes i j =
    ops.(i).History.res_time < ops.(j).History.inv_time
  in
  let rec go state placed count =
    if count = n then Some (List.rev placed)
    else
      let key = (Array.copy done_, state) in
      if Memo.mem visited key then begin
        Lepower_obs.Metrics.incr m_memo_hits;
        None
      end
      else begin
        Lepower_obs.Metrics.incr m_memo_misses;
        Memo.add visited key ();
        let rec try_ops i =
          if i >= n then None
          else if
            done_.(i)
            || not
                 (Array.for_all
                    (fun j -> done_.(j) || not (precedes j i))
                    (Array.init n (fun j -> j)))
          then try_ops (i + 1)
          else
            match
              Memory.Spec.apply spec ~pid:ops.(i).History.pid state
                ops.(i).History.op
            with
            | Error _ -> try_ops (i + 1)
            | Ok (state', response) ->
              if not (Value.equal response ops.(i).History.result) then
                try_ops (i + 1)
              else begin
                done_.(i) <- true;
                match go state' (ops.(i) :: placed) (count + 1) with
                | Some _ as r -> r
                | None ->
                  done_.(i) <- false;
                  try_ops (i + 1)
              end
        in
        try_ops 0
      end
  in
  match go spec.Memory.Spec.init [] 0 with
  | Some order -> Linearizable order
  | None -> Not_linearizable

let is_linearizable ~spec history =
  match check ~spec history with
  | Linearizable _ -> true
  | Not_linearizable -> false

let check_view ~spec ~history_loc view =
  check ~spec (History.of_view view history_loc)

let is_linearizable_view ~spec ~history_loc view =
  match check_view ~spec ~history_loc view with
  | Linearizable _ -> true
  | Not_linearizable -> false

let check_run ~spec ~history_loc ?subject ?seed ?max_steps ~sched config =
  let outcome, cert =
    Runtime.Repro.record ?subject ?seed ?max_steps ~sched config
  in
  let final_view =
    Runtime.Engine.Config_view.of_config outcome.Runtime.Engine.final
  in
  let history = History.of_view final_view history_loc in
  match check ~spec history with
  | Linearizable order -> Ok order
  | Not_linearizable ->
    Error
      (Runtime.Repro.with_message cert
         (Printf.sprintf
            "history at %S is not linearizable against spec %s" history_loc
            spec.Memory.Spec.type_name))
