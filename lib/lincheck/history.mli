(** Concurrent operation histories (Herlihy & Wing [12]).

    A history is the record of high-level operations — each spanning many
    primitive steps — with their invocation and response times.  Because
    implemented operations are not atomic, we capture them with an
    instrumentation object ({!recorder_spec}) installed in the store:
    programs bracket each high-level operation with [invoke]/[respond]
    marker operations, and the recorder keeps the globally ordered event
    log.  The checker ({!Lincheck}) then decides whether the history is
    linearizable w.r.t. a sequential specification. *)

module Value := Memory.Value

type operation = {
  pid : int;
  op : Value.t;  (** the high-level operation descriptor *)
  result : Value.t;
  inv_time : int;  (** position of the invocation marker in the log *)
  res_time : int;  (** position of the response marker *)
}

type t = operation list

val recorder_spec : unit -> Memory.Spec.t
(** Append-only event log; install at some location, e.g. ["history"]. *)

val invoke : string -> Value.t -> unit Runtime.Program.t
(** [invoke loc op] records the invocation of high-level operation [op]
    by the calling process. *)

val respond : string -> Value.t -> unit Runtime.Program.t
(** [respond loc result] records the completion of the calling process's
    pending operation. *)

val bracket :
  string -> Value.t -> Value.t Runtime.Program.t -> Value.t Runtime.Program.t
(** [bracket loc op body] = invoke; body; respond (with body's result). *)

val of_store : Memory.Store.t -> string -> t
(** Parse the recorder's state into a history (see {!of_view}).  Operations whose response
    marker is missing (the process crashed mid-operation) are dropped —
    the checker treats incomplete operations as never having happened,
    which is sound for the properties we test (we never check histories
    where a crashed operation's effect was observed). *)

val of_view : Runtime.Engine.Config_view.t -> string -> t
(** {!of_store} through a backend-neutral
    {!Runtime.Engine.Config_view.t}: reads the recorder's state with
    {!Runtime.Engine.Config_view.store_state} — a single O(1) binding
    read on the arena backend, no store materialization.  This is the
    form explorer/fuzzer predicates should use.  Same parsing and
    crash-drop semantics as {!of_store}. *)

val pp : Format.formatter -> t -> unit
