(** Linearizability checking (Wing & Gong's algorithm).

    Given a complete concurrent history and a sequential specification,
    search for a {e linearization}: a total order of the operations that
    (a) respects real time — an operation that responded before another
    was invoked comes first — and (b) is a legal sequential execution of
    the specification with matching results.

    The search is exponential in the worst case but fast on the short
    histories our tests generate; visited (done-set, state) pairs are
    memoized.

    Observability: [check] is wrapped in a ["lincheck.check"]
    {!Lepower_obs.Span} and maintains the [lincheck.checks] /
    [lincheck.memo_hits] / [lincheck.memo_misses] counters when
    {!Lepower_obs.Metrics} is enabled. *)

module Value := Memory.Value

type result =
  | Linearizable of History.operation list  (** a witness order *)
  | Not_linearizable

val check : spec:Memory.Spec.t -> History.t -> result
(** [spec] is the sequential specification; each history operation's [op]
    is fed to [spec.apply] (with its recorded pid) and the returned
    response must equal the recorded [result]. *)

val is_linearizable : spec:Memory.Spec.t -> History.t -> bool

val check_view :
  spec:Memory.Spec.t ->
  history_loc:string ->
  Runtime.Engine.Config_view.t ->
  result
(** {!check} on the history recorded at [history_loc], read through a
    backend-neutral view ({!History.of_view}): the checker-predicate
    form, usable directly inside {!Runtime.Explore.check_all} /
    {!Runtime.Fuzz.campaign} predicates with no per-terminal store
    materialization on the arena backend. *)

val is_linearizable_view :
  spec:Memory.Spec.t ->
  history_loc:string ->
  Runtime.Engine.Config_view.t ->
  bool
(** Boolean form of {!check_view}. *)

val check_run :
  spec:Memory.Spec.t ->
  history_loc:string ->
  ?subject:Lepower_obs.Json.t ->
  ?seed:int ->
  ?max_steps:int ->
  sched:Runtime.Sched.t ->
  Runtime.Engine.config ->
  (History.operation list, Runtime.Repro.t) Stdlib.result
(** Run the configuration to completion under the scheduler while
    recording a {!Runtime.Repro} schedule certificate, parse the
    history the {!History.recorder_spec} at [history_loc] accumulated,
    and check it.  [Ok] is the witness linearization; a non-linearizable
    history returns the certificate (with [subject]/[seed] attached and
    a message naming the location and spec) — the schedule that produced
    the violation, replayable bit-for-bit. *)
