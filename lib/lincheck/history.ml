module Value = Memory.Value
module Program = Runtime.Program

type operation = {
  pid : int;
  op : Value.t;
  result : Value.t;
  inv_time : int;
  res_time : int;
}

type t = operation list

let recorder_spec () =
  let apply ~pid state op =
    let events = Value.as_list state in
    match op with
    | Value.Pair (Value.Sym "inv", o) ->
      Ok
        ( Value.list (events @ [ Value.triple (Value.sym "inv") (Value.int pid) o ]),
          Value.unit )
    | Value.Pair (Value.Sym "res", r) ->
      Ok
        ( Value.list (events @ [ Value.triple (Value.sym "res") (Value.int pid) r ]),
          Value.unit )
    | _ -> Error ("history recorder: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"history-recorder" ~init:(Value.list []) ~apply

let invoke loc o =
  let open Program in
  let* _ = op loc (Value.pair (Value.sym "inv") o) in
  return ()

let respond loc r =
  let open Program in
  let* _ = op loc (Value.pair (Value.sym "res") r) in
  return ()

let bracket loc o body =
  let open Program in
  let* () = invoke loc o in
  let* result = body in
  let* () = respond loc result in
  return result

let of_events loc events =
  let events =
    match events with
    | Some v -> Value.as_list v
    | None -> invalid_arg ("History.of_store: no recorder at " ^ loc)
  in
  (* Pair each response with its process's pending invocation. *)
  let pending = Hashtbl.create 7 in
  let ops = ref [] in
  List.iteri
    (fun time event ->
      let kind, pid, payload = Value.as_triple event in
      let pid = Value.as_int pid in
      match Value.as_sym kind with
      | "inv" -> Hashtbl.replace pending pid (payload, time)
      | "res" -> (
        match Hashtbl.find_opt pending pid with
        | None ->
          invalid_arg "History.of_store: response without invocation"
        | Some (op, inv_time) ->
          Hashtbl.remove pending pid;
          ops := { pid; op; result = payload; inv_time; res_time = time } :: !ops)
      | s -> invalid_arg ("History.of_store: bad event kind " ^ s))
    events;
  List.rev !ops

let of_store store loc = of_events loc (Memory.Store.peek store loc)

let of_view view loc =
  of_events loc (Runtime.Engine.Config_view.store_state view loc)

let pp ppf t =
  let pp_op ppf o =
    Fmt.pf ppf "p%d %a -> %a [%d,%d]" o.pid Value.pp o.op Value.pp o.result
      o.inv_time o.res_time
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_op) t
