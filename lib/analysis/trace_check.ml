module Value = Memory.Value
module Trace = Runtime.Trace
module Op_codec = Objects.Op_codec

(* Which mutation family does a spec's type_name promise?  [None] for
   object types the checker has no model of. *)
let expected_family type_name =
  let has_prefix p =
    String.length type_name >= String.length p
    && String.sub type_name 0 (String.length p) = p
  in
  if String.equal type_name "swmr-reg" || String.equal type_name "mwmr-reg"
  then Some "write"
  else if has_prefix "cas(" then Some "cas"
  else if String.equal type_name "swap" then Some "swap"
  else if String.equal type_name "sticky" then Some "sticky-write"
  else if has_prefix "rmw(" then Some "rmw"
  else if String.equal type_name "queue" then Some "queue"
  else if String.equal type_name "ll/sc" then Some "ll/sc"
  else if String.equal type_name "test&set" then Some "test&set"
  else if has_prefix "fetch&add" then Some "fetch&add"
  else None

let is_register_type type_name =
  String.equal type_name "swmr-reg" || String.equal type_name "mwmr-reg"

type writer = { pid : int; value : Value.t; clock : Vclock.t }

let check ?(single_writer = []) ~store trace =
  let n =
    1 + List.fold_left (fun m (e : Trace.event) -> max m e.Trace.pid) 0 trace
  in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let clocks = Array.init n (fun _ -> Vclock.make n) in
  (* Per location: the last mutation (reads-from source), every pid's most
     recent write (single-writer discipline), and the mutation families
     seen so far (op/response confusion). *)
  let last_mut : (string, writer) Hashtbl.t = Hashtbl.create 16 in
  let writers : (string, (int * Vclock.t) list) Hashtbl.t = Hashtbl.create 16 in
  let families : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let type_of loc =
    Option.map
      (fun (s : Memory.Spec.t) -> s.Memory.Spec.type_name)
      (Memory.Store.spec_of store loc)
  in
  let is_single_writer loc =
    List.exists (String.equal loc) single_writer
    || (match type_of loc with Some "swmr-reg" -> true | _ -> false)
  in
  let record_family loc kind =
    let fam = Op_codec.family_name kind in
    let seen = Option.value ~default:[] (Hashtbl.find_opt families loc) in
    if not (List.exists (String.equal fam) seen) then begin
      Hashtbl.replace families loc (fam :: seen);
      (match seen with
      | [] -> ()
      | other :: _ ->
        add
          (Finding.v ~rule:"op-type" ~loc
             "location driven through two operation families: %s and %s" other
             fam));
      match type_of loc with
      | None -> ()
      | Some tn -> (
        match expected_family tn with
        | Some want when not (String.equal want fam) ->
          add
            (Finding.v ~rule:"op-type" ~loc
               "%s operation on a location of object type %s (expects %s)" fam
               tn want)
        | Some _ | None -> ())
    end
  in
  List.iter
    (fun (e : Trace.event) ->
      let pid = e.Trace.pid and loc = e.Trace.loc in
      let clock = Vclock.tick clocks.(pid) pid in
      clocks.(pid) <- clock;
      let kind = Op_codec.classify e.Trace.op in
      (* Reads are legal on every object family; only mutations commit a
         location to a family. *)
      (match kind with
      | Op_codec.Other | Op_codec.Read -> ()
      | _ -> record_family loc kind);
      match kind with
      | Op_codec.Read ->
        (* Reads-from: in a linearized trace an atomic read must return
           the latest preceding mutation's published value, or the
           initial value when nothing was written yet.  Only register
           locations publish the exact value they were handed; other
           object types are replay-checked by [Bounded_check]. *)
        let registerish =
          match type_of loc with
          | Some tn -> is_register_type tn
          | None -> Hashtbl.find_opt last_mut loc <> None
        in
        (match Hashtbl.find_opt last_mut loc with
        | Some w ->
          if registerish && not (Value.equal e.Trace.result w.value) then
            add
              (Finding.v ~rule:"reads-from" ~loc
                 "t=%d p%d read %s but the latest write (p%d) published %s"
                 e.Trace.time pid
                 (Value.to_string e.Trace.result)
                 w.pid (Value.to_string w.value));
          clocks.(pid) <- Vclock.join clocks.(pid) w.clock
        | None ->
          let init = Memory.Store.peek store loc in
          if registerish then
            Option.iter
              (fun init ->
                if not (Value.equal e.Trace.result init) then
                  add
                    (Finding.v ~rule:"reads-from" ~loc
                       "t=%d p%d read %s before any write; initial value is \
                        %s"
                       e.Trace.time pid
                       (Value.to_string e.Trace.result)
                       (Value.to_string init)))
              init)
      | Op_codec.Write v ->
        if not (Value.equal e.Trace.result Value.unit) then
          add
            (Finding.v ~rule:"op-type" ~loc
               "t=%d p%d write acknowledged with %s instead of ()" e.Trace.time
               pid
               (Value.to_string e.Trace.result));
        if is_single_writer loc then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt writers loc) in
          List.iter
            (fun (p, c) ->
              if p <> pid then
                add
                  (Finding.v ~rule:"swmr-discipline" ~loc
                     "single-writer register written by both p%d and p%d \
                      (writes are %s under happens-before)"
                     p pid
                     (if Vclock.concurrent c clock then "concurrent"
                      else "ordered")))
            prev;
          Hashtbl.replace writers loc
            ((pid, clock) :: List.remove_assoc pid prev)
        end;
        Hashtbl.replace last_mut loc { pid; value = v; clock }
      | Op_codec.Cas { expected; desired } ->
        (* A cas publishes [desired] exactly when it succeeds (returns
           [expected] and changes the value). *)
        if
          Value.equal e.Trace.result expected
          && not (Value.equal expected desired)
        then Hashtbl.replace last_mut loc { pid; value = desired; clock }
      | Op_codec.Swap v ->
        Hashtbl.replace last_mut loc { pid; value = v; clock }
      | Op_codec.Sticky_write _ | Op_codec.Rmw _ ->
        (* The published value is the operation's return contract, not its
           argument; replay in [Bounded_check] validates it. *)
        Hashtbl.replace last_mut loc
          { pid; value = e.Trace.result; clock }
      | Op_codec.Ll | Op_codec.Sc _ | Op_codec.Enq _ | Op_codec.Deq
      | Op_codec.Test_and_set | Op_codec.Reset | Op_codec.Fetch_add _ ->
        (* Not register-like: these objects' responses are replay-checked
           value by value in [Bounded_check]; no reads-from source to
           track here. *)
        ()
      | Op_codec.Other -> ())
    trace;
  Finding.dedup (List.rev !findings)
