module Json = Lepower_obs.Json
module Engine = Runtime.Engine
module Election = Protocols.Election

type resolved = {
  name : string;
  config : Engine.config;
  failing : Engine.Config_view.t -> string option;
}

(* ------------------------------------------------------------------ *)
(* Builders.                                                           *)

let election ~protocol ~k ~n ?(crashed = []) () =
  Json.Obj
    ([
       ("kind", Json.String "election");
       ("protocol", Json.String protocol);
       ("k", Json.Int k);
       ("n", Json.Int n);
     ]
    @
    match crashed with
    | [] -> []
    | pids -> [ ("crashed", Json.List (List.map (fun p -> Json.Int p) pids)) ])

let fixture ?n ?(flip = false) name =
  Json.Obj
    ([ ("kind", Json.String "fixture"); ("name", Json.String name) ]
    @ (match n with None -> [] | Some n -> [ ("n", Json.Int n) ])
    @ if flip then [ ("flip", Json.Bool true) ] else [])

(* ------------------------------------------------------------------ *)
(* Resolution.                                                         *)

let of_target (t : Lint.target) =
  let store = Memory.Store.create t.Lint.bindings in
  let failing view =
    let trace = Engine.Config_view.trace view in
    let findings =
      Bounded_check.check ~bounds:t.Lint.bounds ~store trace
      @ Trace_check.check ~single_writer:t.Lint.single_writer ~store trace
    in
    match List.find_opt Finding.is_reportable findings with
    | Some f -> Some (Printf.sprintf "%s: %s" f.Finding.rule f.Finding.detail)
    | None ->
      if Engine.Config_view.max_steps_per_proc view > t.Lint.budget then
        Some
          (Printf.sprintf "per-process step budget %d exceeded" t.Lint.budget)
      else None
  in
  {
    name = t.Lint.name;
    config = Engine.init store t.Lint.programs;
    failing;
  }

let election_instance ~protocol ~k ~n =
  match protocol with
  | "perm" -> Ok (Protocols.Permutation_election.instance ~k ~n)
  | "cas" -> Ok (Protocols.Cas_election.instance ~k ~n)
  | "bcl" -> Ok (Protocols.Bcl_election.instance ~k ~n)
  | "multi" ->
    Ok (Protocols.Multi_election.instance ~ks:[ k; max 2 (k - 1) ] ~n)
  | p -> Error (Printf.sprintf "unknown election protocol %S" p)

let of_election instance ~crashed =
  let config =
    List.fold_left
      (fun c pid -> Engine.crash c pid)
      (Election.config instance) crashed
  in
  let failing view =
    match Election.check_partial instance view with
    | Ok () -> None
    | Error m -> Some m
  in
  { name = instance.Election.name; config; failing }

let ( let* ) = Result.bind

let str_field name json =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "subject field %S is not a string" name)
  | None -> Error (Printf.sprintf "subject is missing %S" name)

let int_field name json =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "subject field %S is not an int" name)
  | None -> Error (Printf.sprintf "subject is missing %S" name)

let resolve json =
  match json with
  | Json.Null -> Error "certificate has no subject (recorded without one)"
  | _ -> (
    let* kind = str_field "kind" json in
    match kind with
    | "election" ->
      let* protocol = str_field "protocol" json in
      let* k = int_field "k" json in
      let* n = int_field "n" json in
      let* crashed =
        match Json.member "crashed" json with
        | None -> Ok []
        | Some (Json.List pids) ->
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              match p with
              | Json.Int pid -> Ok (pid :: acc)
              | _ -> Error "subject field \"crashed\" holds a non-int")
            (Ok []) pids
          |> Result.map List.rev
        | Some _ -> Error "subject field \"crashed\" is not a list"
      in
      let* instance = election_instance ~protocol ~k ~n in
      Ok (of_election instance ~crashed)
    | "fixture" -> (
      let* name = str_field "name" json in
      let n =
        match Json.member "n" json with Some (Json.Int n) -> Some n | _ -> None
      in
      let flip =
        match Json.member "flip" json with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      match name with
      | "broken-swmr" -> Ok (of_target (Lint.broken_swmr_fixture ~flip ()))
      | "broken-cas" -> Ok (of_target (Lint.broken_cas_fixture ?n ~flip ()))
      | "spin" -> Ok (of_target (Lint.spin_fixture ()))
      | f -> Error (Printf.sprintf "unknown fixture %S" f))
    | k -> Error (Printf.sprintf "unknown subject kind %S" k))
