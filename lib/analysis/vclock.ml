type t = int array

let make n = Array.make (max n 1) 0
let copy = Array.copy
let get t pid = if pid < Array.length t then t.(pid) else 0

let tick t pid =
  let t = Array.copy t in
  t.(pid) <- t.(pid) + 1;
  t

let join a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i -> max (get a i) (get b i))

let leq a b =
  let n = max (Array.length a) (Array.length b) in
  let rec go i = i >= n || (get a i <= get b i && go (i + 1)) in
  go 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ",") int) t

let to_string t = Fmt.str "%a" pp t
