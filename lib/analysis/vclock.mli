(** Vector clocks over process ids [0 .. n-1].

    The trace discipline checker replays a linearized trace and maintains
    one clock per process, advanced on every own step and joined with the
    clock of the write a read observes.  Two events are {e concurrent}
    (racing) when neither clock dominates the other — the happens-before
    relation induced by program order plus reads-from edges, which is
    finer than the accidental linearization order the schedule produced. *)

type t

val make : int -> t
(** The zero clock for [n] processes (all components 0). *)

val copy : t -> t
val get : t -> int -> int

val tick : t -> int -> t
(** Advance one component (persistent: returns a new clock). *)

val join : t -> t -> t
(** Componentwise maximum. *)

val leq : t -> t -> bool
(** [leq a b] — did [a] happen before (or equal) [b]? *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
