module Summary = Lepower_static.Summary
module Absint = Lepower_static.Absint
module Kbound = Lepower_static.Kbound
module Accountant = Lepower_static.Accountant
module Soundness = Lepower_static.Soundness
module Sset = Summary.Sset

type analysis = {
  summary : Summary.t;
  certs : Kbound.cert list;
  accountant : Accountant.t;
}

let m_analyses = Lepower_obs.Metrics.counter "static.analyses"
let ph_static = Lepower_prof.Phase.make "lint.static"

let analyze ?options ?(bounds = []) ~bindings programs =
  Lepower_obs.Metrics.incr m_analyses;
  let tok = Lepower_prof.Phase.enter ph_static in
  let summary = Absint.analyze ?options ~bindings programs in
  let a =
    {
      summary;
      certs = Kbound.certify ~bounds ~bindings summary;
      accountant = Accountant.count ~bindings summary;
    }
  in
  Lepower_prof.Phase.leave tok;
  a

let findings ?register_budget ~name ~budget ~single_writer ~bindings a =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let s = a.summary in
  (* static-swmr: presence evidence survives an incomplete summary — the
     interpreter saw both processes issue the write. *)
  let swmr_locs =
    List.sort_uniq String.compare
      (single_writer
      @ List.filter_map
          (fun (loc, (spec : Memory.Spec.t)) ->
            if String.equal spec.Memory.Spec.type_name "swmr-reg" then Some loc
            else None)
          bindings)
  in
  List.iter
    (fun loc ->
      match
        List.filter
          (fun (p : Summary.per_pid) -> Sset.mem loc p.Summary.may_write)
          s.Summary.per_pid
      with
      | ([] | [ _ ]) -> ()
      | writers ->
        add
          (Finding.v ~rule:"static-swmr" ~loc
             "single-writer register statically writable by %d processes \
              (%s) — no schedule needed"
             (List.length writers)
             (String.concat ", "
                (List.map
                   (fun (p : Summary.per_pid) ->
                     Printf.sprintf "p%d" p.Summary.pid)
                   writers))))
    swmr_locs;
  (* static-k-bound: the abstract store already exceeds the alphabet. *)
  List.iter
    (fun (c : Kbound.cert) ->
      if c.Kbound.violated then
        match (c.Kbound.non_init, c.Kbound.bound) with
        | Some non_init, Some k ->
          add
            (Finding.v ~rule:"static-k-bound" ~loc:c.Kbound.loc
               "%d distinct non-initial abstract states reachable on a %s \
                with bound %d (admits %d)%s"
               non_init c.Kbound.type_name k (k - 1)
               (if s.Summary.complete then ""
                else " — summary incomplete, corroborate dynamically"))
        | _ -> ())
    a.certs;
  (* static-loop-bound: the wait-freedom pre-pass's findings. *)
  List.iter
    (fun (p : Summary.per_pid) ->
      let loc = Printf.sprintf "p%d" p.Summary.pid in
      match p.Summary.op_bound with
      | Summary.Bounded b ->
        if b > budget then
          add
            (Finding.v ~severity:Finding.Info ~rule:"static-loop-bound" ~loc
               "statically bounded at %d ops, above the declared budget %d \
                (the pooled responder over-approximates; corroborate \
                dynamically)"
               b budget)
      | Summary.Unbounded ->
        if p.Summary.node_capped then
          add
            (Finding.v ~severity:Finding.Info ~rule:"static-loop-bound" ~loc
               "walk inconclusive: node cap hit before the depth cap \
                resolved")
        else if not p.Summary.terminates then
          add
            (Finding.v ~rule:"static-loop-bound" ~loc
               "unbounded operation sequence and no terminating path under \
                the pooled responder — a spin no environment state exits")
        else
          add
            (Finding.v ~severity:Finding.Info ~rule:"static-loop-bound" ~loc
               "syntactic retry loop (depth cap exceeded) with a reachable \
                exit; the dynamic auditor decides"))
    s.Summary.per_pid;
  (* static-register-budget: the accountant's census, always on record. *)
  let acct = a.accountant in
  (match register_budget with
  | Some rb when Accountant.over_budget acct ~budget:rb ->
    add
      (Finding.v ~rule:"static-register-budget" ~loc:name
         "static footprint needs %d registers, over the declared budget %d \
          (%a)"
         acct.Accountant.total rb Accountant.pp acct)
  | _ ->
    add
      (Finding.v ~severity:Finding.Info ~rule:"static-register-budget"
         ~loc:name "%a" Accountant.pp acct));
  List.rev !fs

let soundness_findings ~name ~store summary trace =
  if not summary.Summary.complete then []
  else
    List.map
      (fun violation ->
        Finding.v ~rule:"static-soundness" ~loc:name
          "execution escaped the effect summary: %s" violation)
      (Soundness.check ~store summary trace)

let counterpart = function
  | "swmr-discipline" -> Some "static-swmr"
  | "bounded-value" -> Some "static-k-bound"
  | "wait-freedom" -> Some "static-loop-bound"
  | _ -> None
