(** Trace discipline checker: a vector-clock happens-before pass over one
    linearized execution trace.

    Replays the trace once, maintaining per-process vector clocks
    (program order, joined along reads-from edges) and per-location write
    metadata, and reports:

    - {b swmr-discipline}: two distinct processes wrote one single-writer
      register.  The paper assumes w.l.o.g. that the emulated algorithm's
      r/w registers are SWMR; this rule makes that assumption checkable
      on any trace, including traces of protocols that (wrongly) route a
      shared register through the multi-writer spec.  The finding reports
      whether the offending writes were concurrent under happens-before
      or merely by different owners.
    - {b reads-from}: an atomic register read returned a value that is
      neither the latest preceding write's value nor the initial value.
    - {b op-type}: operation/response confusion — a location driven
      through two different operation families (e.g. both [write] and
      [cas]), an operation family contradicting the location's spec
      type, or a write acknowledged with a non-unit response.

    The checker never runs programs; it needs only the {e initial} store
    (for specs and initial values) and the trace. *)

val check :
  ?single_writer:string list ->
  store:Memory.Store.t ->
  Runtime.Trace.t ->
  Finding.t list
(** [check ~store trace] — [store] must be the pre-run store (as built
    from an instance's bindings).  Locations whose spec type is
    [swmr-reg] are held to the single-writer discipline automatically;
    [single_writer] adds locations that are {e declared} single-writer
    even though their spec would accept any writer (that is exactly the
    discipline violation the rule exists to catch).  Findings are
    deduplicated and sorted. *)
