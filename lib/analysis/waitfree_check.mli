(** Wait-freedom auditor: symbolic unrolling of a program's step machine
    against an adversarial responder.

    Wait-freedom is a property of one process's {e own} steps: it must
    decide within a bounded number of shared-memory operations no matter
    what the rest of the system does.  The auditor explores the program's
    {!Runtime.Program.prim} tree directly — no scheduler, no other
    processes — feeding every operation each response the adversary could
    justify, and checks that every path reaches [Done] within the step
    budget.  A [repeat_until] loop whose exit depends on the environment
    shows up immediately: the adversary keeps answering "not yet" and the
    unrolling blows through the budget, producing an {!Exceeded} verdict
    with the witness operation path.

    The default adversary ({!store_responder}) answers an operation with
    every response the location's sequential spec can produce from any
    state in a growing pool (initial values plus every state any audited
    program's operations have produced).  This over-approximates real
    executions — a flagged program {e admits} an unbounded adversarial
    op sequence, it does not necessarily exhibit one under real
    schedules — which is why the lint driver corroborates [Exceeded]
    verdicts against actually-explored executions
    ({!Runtime.Engine.outcome} steps) before reporting an error. *)

module Value := Memory.Value

type verdict =
  | Bounded of int
      (** every adversarial path decides within this many operations —
          the audited wait-freedom bound *)
  | Exceeded of { budget : int; witness : (string * Value.t) list }
      (** some adversarial path performs more than [budget] operations;
          [witness] is its operation sequence, oldest first *)
  | Inconclusive of { explored : int }
      (** the node cap was hit before the unrolling was exhausted *)

val witness_summary : ?limit:int -> (string * Value.t) list -> string
(** The witness's operation locations, [" → "]-separated, elided past
    [limit] (default 8) with the total op count. *)

val pp_verdict : Format.formatter -> verdict -> unit

type responder = {
  respond : pid:int -> loc:string -> op:Value.t -> Value.t list;
}
(** The adversary: every response the environment may give [pid]'s [op]
    on [loc].  An empty list means the operation faults (the engine
    would stop the process), ending the path. *)

val store_responder : Memory.Store.t -> responder
(** The pooled-state adversary described above.  Stateful: the pool
    persists across calls, so auditing several programs with one
    responder lets each see the others' published states. *)

val audit :
  ?max_nodes:int ->
  budget:int ->
  responder:responder ->
  pid:int ->
  Runtime.Program.prim ->
  verdict
(** Unroll one program to the per-process step [budget] (the protocol's
    wait-freedom certificate).  [max_nodes] (default 100_000) caps the
    explored tree; hitting it yields {!Inconclusive}, never a false
    {!Exceeded}. *)

val audit_programs :
  ?max_nodes:int ->
  store:Memory.Store.t ->
  budget:int ->
  Runtime.Program.prim list ->
  (int * verdict) list
(** Audit each program (pid in list order) against one shared pooled
    responder, in two passes so every program's second-pass audit sees
    states first-pass audits of {e all} programs produced. *)

val audit_instance :
  ?max_nodes:int -> Protocols.Election.instance -> (int * verdict) list
(** {!audit_programs} over an election instance's programs, with the
    instance's [step_bound] as the budget. *)
