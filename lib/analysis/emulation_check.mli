(** The analysis pass over a finished emulation, run next to
    {!Core.Invariants} on the emulation run path.

    Every active label's constructed history is a Σ-history of the
    emulated compare&swap-(k): {!check} feeds each one to
    {!Bounded_check.check_history} with the owning label, certifying the
    space bound ([bounded-value]), the history shape ([sigma-history])
    and the first-use order against the label ([label-order]) over the
    very structures {!Core.Invariants} audits — but with the same
    finding/report pipeline (rules, severities, JSONL) as the trace
    lints, so emulation runs and protocol runs are checkable by one
    toolchain. *)

val check : Core.Emulation.t -> Finding.t list
(** Findings are deduplicated; the [loc] of each is
    ["history[<label>]"]. *)
