module Value = Memory.Value
module Trace = Runtime.Trace
module Sigma = Core.Sigma
module Label = Core.Label

(* "cas(7)" -> Some 7 *)
let cas_size type_name =
  if String.length type_name > 5 && String.sub type_name 0 4 = "cas(" then
    int_of_string_opt (String.sub type_name 4 (String.length type_name - 5))
  else None

let check_history ?label ~k ~loc history =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (match history with
  | [] | Sigma.Bot :: _ -> ()
  | s :: _ ->
    add
      (Finding.v ~rule:"sigma-history" ~loc
         "history starts at %s, not at ⊥" (Sigma.to_string s)));
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      if Sigma.equal a b then
        add
          (Finding.v ~rule:"sigma-history" ~loc
             "history repeats %s consecutively (a c&s success must change \
              the value)"
             (Sigma.to_string a));
      adjacent rest
    | _ -> ()
  in
  adjacent history;
  (* The space bound itself: the register may ever take at most k distinct
     values — ⊥ plus the k−1 symbols 0 … k−2. *)
  let non_bottom =
    List.sort_uniq Sigma.compare
      (List.filter (fun s -> not (Sigma.equal s Sigma.Bot)) history)
  in
  if List.length non_bottom > k - 1 then
    add
      (Finding.v ~rule:"bounded-value" ~loc
         "%d distinct non-⊥ values appear; a cas(%d) admits only %d"
         (List.length non_bottom) k (k - 1));
  List.iter
    (fun s ->
      match s with
      | Sigma.V i when i < 0 || i > k - 2 ->
        add
          (Finding.v ~rule:"bounded-value" ~loc
             "value %d escapes the Σ alphabet {⊥, 0, …, %d}" i (k - 2))
      | Sigma.V _ | Sigma.Bot -> ())
    non_bottom;
  (* First uses, in order of appearance, must form a legal label — and
     when the caller knows which label this history belongs to (the
     emulation does), they must follow exactly that label's order. *)
  let first_uses =
    List.fold_left
      (fun acc s ->
        match s with
        | Sigma.Bot -> acc
        | Sigma.V i -> if List.mem i acc then acc else i :: acc)
      [] history
    |> List.rev
  in
  (try ignore (List.fold_left Label.extend Label.root first_uses)
   with Invalid_argument _ ->
     add
       (Finding.v ~rule:"label-order" ~loc
          "first uses %s do not form a legal label"
          (Label.to_string first_uses)));
  Option.iter
    (fun l ->
      if not (Label.is_prefix first_uses l) then
        add
          (Finding.v ~rule:"label-order" ~loc
             "first uses %s do not follow the label %s"
             (Label.to_string first_uses) (Label.to_string l)))
    label;
  List.rev !findings

(* Families whose value timeline the lint certifies. *)
type family = Cas of int | Swap | Sticky

let family_of type_name =
  match cas_size type_name with
  | Some k -> Some (Cas k)
  | None ->
    if String.equal type_name "swap" then Some Swap
    else if String.equal type_name "sticky" then Some Sticky
    else None

let check ?(bounds = []) ~store trace =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* Replay the whole trace through the sequential specs: every recorded
     response must be reproducible.  This is the strongest per-location
     op/response cross-check we can run — specs are deterministic, so a
     genuine engine trace replays exactly. *)
  let timelines : (string, Value.t list) Hashtbl.t = Hashtbl.create 16 in
  let note_state loc state =
    let prev = Option.value ~default:[] (Hashtbl.find_opt timelines loc) in
    match prev with
    | last :: _ when Value.equal last state -> ()
    | _ -> Hashtbl.replace timelines loc (state :: prev)
  in
  List.iter
    (fun loc ->
      Option.iter (note_state loc) (Memory.Store.peek store loc))
    (Memory.Store.locs store);
  let final =
    List.fold_left
      (fun st (e : Trace.event) ->
        match
          Memory.Store.apply st ~pid:e.Trace.pid e.Trace.loc e.Trace.op
        with
        | Error msg ->
          add
            (Finding.v ~rule:"replay-divergence" ~loc:e.Trace.loc
               "t=%d p%d op %s rejected on replay: %s" e.Trace.time e.Trace.pid
               (Value.to_string e.Trace.op) msg);
          st
        | Ok (st', result) ->
          if not (Value.equal result e.Trace.result) then
            add
              (Finding.v ~rule:"replay-divergence" ~loc:e.Trace.loc
                 "t=%d p%d op %s returned %s but replays to %s" e.Trace.time
                 e.Trace.pid
                 (Value.to_string e.Trace.op)
                 (Value.to_string e.Trace.result)
                 (Value.to_string result));
          Option.iter (note_state e.Trace.loc) (Memory.Store.peek st' e.Trace.loc);
          st')
      store trace
  in
  ignore final;
  (* Certify each bounded location's value timeline. *)
  List.iter
    (fun loc ->
      let family =
        match Memory.Store.spec_of store loc with
        | None -> None
        | Some s -> family_of s.Memory.Spec.type_name
      in
      let declared = List.assoc_opt loc bounds in
      let timeline =
        List.rev (Option.value ~default:[] (Hashtbl.find_opt timelines loc))
      in
      let changes = List.length timeline - 1 in
      match family, declared with
      | Some (Cas k), _ ->
        let k = Option.value ~default:k declared in
        let history =
          List.filter_map
            (fun v ->
              match Sigma.of_value v with
              | s -> Some s
              | exception Value.Type_error _ ->
                add
                  (Finding.v ~rule:"sigma-history" ~loc
                     "state %s is outside the Σ encoding" (Value.to_string v));
                None)
            timeline
        in
        List.iter add (check_history ~k ~loc history)
      | Some Sticky, _ ->
        if changes > 1 then
          add
            (Finding.v ~rule:"sticky-discipline" ~loc
               "sticky register changed value %d times (⊥ may freeze once)"
               changes)
      | Some Swap, Some k | None, Some k ->
        (* No intrinsic alphabet: certify against the declared bound. *)
        let distinct =
          List.length (List.sort_uniq Value.compare timeline)
        in
        if distinct > k then
          add
            (Finding.v ~rule:"bounded-value" ~loc
               "%d distinct values observed; declared bound is %d" distinct k)
      | Some Swap, None | None, None -> ())
    (Memory.Store.locs store);
  Finding.dedup (List.rev !findings)
