module Json = Lepower_obs.Json

type run_stats = {
  schedules : int;
  truncated : int;
  max_proc_steps : int;
  exhaustive : bool;
}

type t = {
  subject : string;
  findings : Finding.t list;
  stats : run_stats option;
  audits : (int * Waitfree_check.verdict) list;
}

let count sev t =
  List.length (List.filter (fun (f : Finding.t) -> f.Finding.severity = sev) t.findings)

let errors = count Finding.Error
let warnings = count Finding.Warning
let ok t = not (List.exists Finding.is_reportable t.findings)

let verdict_json = function
  | Waitfree_check.Bounded b ->
    Json.Obj [ ("verdict", Json.String "bounded"); ("bound", Json.Int b) ]
  | Waitfree_check.Exceeded { budget; witness } ->
    Json.Obj
      [
        ("verdict", Json.String "exceeded");
        ("budget", Json.Int budget);
        ("witness_ops", Json.Int (List.length witness));
      ]
  | Waitfree_check.Inconclusive { explored } ->
    Json.Obj
      [
        ("verdict", Json.String "inconclusive");
        ("explored", Json.Int explored);
      ]

let summary_json t =
  let stats =
    match t.stats with
    | None -> []
    | Some s ->
      [
        ("schedules", Json.Int s.schedules);
        ("truncated", Json.Int s.truncated);
        ("max_proc_steps", Json.Int s.max_proc_steps);
        ("exhaustive", Json.Bool s.exhaustive);
      ]
  in
  Json.Obj
    ([
       ("type", Json.String "lint-summary");
       ("subject", Json.String t.subject);
       ("findings", Json.Int (List.length t.findings));
       ("errors", Json.Int (errors t));
       ("warnings", Json.Int (warnings t));
     ]
    @ stats
    @ [
        ( "audits",
          Json.List
            (List.map
               (fun (pid, v) ->
                 match verdict_json v with
                 | Json.Obj fields -> Json.Obj (("pid", Json.Int pid) :: fields)
                 | other -> other)
               t.audits) );
      ])

let subject_of_finding subject (f : Finding.t) =
  match Finding.to_json f with
  | Json.Obj fields -> Json.Obj (fields @ [ ("subject", Json.String subject) ])
  | other -> other

let jsonl t =
  List.map (subject_of_finding t.subject) t.findings @ [ summary_json t ]

let write_jsonl path reports =
  Lepower_obs.Export.write_jsonl path (List.concat_map jsonl reports)

let pp ppf t =
  let reportable = List.filter Finding.is_reportable t.findings in
  Fmt.pf ppf "@[<v>%s: %d finding%s (%d error%s, %d warning%s)" t.subject
    (List.length reportable)
    (if List.length reportable = 1 then "" else "s")
    (errors t)
    (if errors t = 1 then "" else "s")
    (warnings t)
    (if warnings t = 1 then "" else "s");
  Option.iter
    (fun s ->
      Fmt.pf ppf "@,  %s schedules: %d (%d truncated), max steps/proc %d"
        (if s.exhaustive then "exhaustive" else "sampled")
        s.schedules s.truncated s.max_proc_steps)
    t.stats;
  List.iter
    (fun (pid, v) ->
      Fmt.pf ppf "@,  wait-freedom p%d: %a" pid Waitfree_check.pp_verdict v)
    t.audits;
  List.iter (fun f -> Fmt.pf ppf "@,  %a" Finding.pp f) t.findings;
  Fmt.pf ppf "@]"
