(** Certificate subject resolution: from the opaque [subject] JSON a
    {!Runtime.Repro.t} carries to a rebuilt initial configuration and a
    failure predicate.

    The runtime treats certificate subjects as uninterpreted data (see
    {!Runtime.Repro}); this module owns the vocabulary.  Two kinds are
    defined:

    - [{"kind":"election","protocol":P,"k":K,"n":N,"crashed":[..]}] — an
      election protocol instance ([perm], [cas], [bcl] or [multi],
      mirroring the CLI's [--protocol]), with the listed pids crashed
      before the first step;
    - [{"kind":"fixture","name":F,"n":N?,"flip":B?}] — a [Lint]
      seeded-bug fixture ([broken-swmr], [broken-cas] with its process
      count, [spin]); [flip] selects the DFS-adversarial variants the
      fuzz benchmark uses (absent means [false]).

    Builders and resolver are kept in one place so a certificate recorded
    by any producer ([lepower lint], {!Protocols.Election.explore_repro},
    the lincheck harness) replays through the same code path. *)

(** A resolved subject: the rebuilt initial configuration (digest-equal
    to the one the certificate was recorded from, for an honest
    certificate) and the failure predicate replayed states are judged
    by — [Some message] when the state exhibits the subject's failure.
    [failing] reads through the backend-neutral
    {!Runtime.Engine.Config_view.t} (wrap a materialized configuration
    with {!Runtime.Engine.Config_view.of_config}).  It tolerates
    partial runs: an execution prefix that has not yet failed is
    [None], never a false positive (this is what makes it sound as a
    {!Runtime.Repro.shrink} predicate). *)
type resolved = {
  name : string;
  config : Runtime.Engine.config;
  failing : Runtime.Engine.Config_view.t -> string option;
}

val election :
  protocol:string ->
  k:int ->
  n:int ->
  ?crashed:int list ->
  unit ->
  Lepower_obs.Json.t
(** Subject descriptor for an election instance.  [protocol] is one of
    ["perm"], ["cas"], ["bcl"], ["multi"]; [n] is the {e resolved}
    process count (record the default explicitly — replay must not
    re-derive it). *)

val fixture : ?n:int -> ?flip:bool -> string -> Lepower_obs.Json.t
(** Subject descriptor for a [Lint] fixture, by short name
    (["broken-swmr"], ["broken-cas"], ["spin"]).  Matches what the
    fixtures themselves embed in their targets; [flip] defaults to
    [false] and is only recorded when [true]. *)

val of_target : Lint.target -> resolved
(** Resolve a lint target directly (no JSON round-trip): initial
    configuration from its bindings and programs; failure = any
    reportable {!Trace_check}/{!Bounded_check} finding or a per-process
    budget overrun. *)

val resolve : Lepower_obs.Json.t -> (resolved, string) result
(** Interpret a certificate subject.  Errors name the missing or unknown
    field; [Null] subjects resolve to an error (nothing to rebuild). *)
