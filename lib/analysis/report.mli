(** Lint reports: one subject (a protocol, a fixture, an emulation), its
    deduplicated findings, how its executions were obtained, and the
    wait-freedom audit verdicts — renderable as text or as a JSONL
    stream of strict {!Lepower_obs.Json} documents (one ["finding"]
    record per finding plus one trailing ["lint-summary"] record per
    subject). *)

type run_stats = {
  schedules : int;  (** executions analyzed *)
  truncated : int;  (** executions cut off by the step bound *)
  max_proc_steps : int;
      (** most shared-memory ops any process performed in any analyzed
          execution — the observed wait-freedom bound *)
  exhaustive : bool;  (** every interleaving vs sampled schedules *)
}

type t = {
  subject : string;
  findings : Finding.t list;
  stats : run_stats option;
  audits : (int * Waitfree_check.verdict) list;  (** by pid *)
}

val errors : t -> int
val warnings : t -> int

val ok : t -> bool
(** No error or warning findings ([Info] does not count). *)

val summary_json : t -> Lepower_obs.Json.t
val jsonl : t -> Lepower_obs.Json.t list
(** Finding records (each tagged with the subject) followed by the
    summary record. *)

val write_jsonl : string -> t list -> unit
val pp : Format.formatter -> t -> unit
