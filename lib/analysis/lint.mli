(** The lint driver: run every analyzer over a protocol (or seeded-bug
    fixture) and collect one {!Report.t}.

    A {!target} is anything executable by the engine — an
    {!Protocols.Election.instance} ({!target_of_instance}) or a
    hand-built fixture.  The driver

    - obtains executions (exhaustively when the instance is small enough,
      otherwise over sampled seeded schedules),
    - feeds every analyzed trace to {!Trace_check} and {!Bounded_check},
    - runs the symbolic {!Waitfree_check} audit and {e corroborates} it
      against the executions actually observed: a symbolic [Exceeded]
      becomes an error only when some execution also truncated or
      overran the budget (the audit's adversarial responder
      over-approximates, so an uncorroborated [Exceeded] is recorded at
      [Info] severity, not reported),
    - dedups findings and applies the [?rules] filter. *)

type target = {
  name : string;
  bindings : (string * Memory.Spec.t) list;
  programs : Runtime.Program.prim list;
  budget : int;
      (** claimed wait-freedom bound: max shared-memory ops per process *)
  single_writer : string list;
      (** locations the protocol {e claims} are single-writer, for the
          trace discipline checker (independent of whether the bound
          spec enforces it) *)
  bounds : (string * int) list;
      (** claimed space bounds [loc, k] overriding the spec's own, for
          the bounded-value lint *)
  subject : Lepower_obs.Json.t;
      (** opaque instance descriptor stored in recorded
          {!Runtime.Repro} certificates so [lepower replay] can rebuild
          the target (see [Repro_subject]); [Null] when the target is
          not rebuildable by name *)
}

val target_of_instance :
  ?subject:Lepower_obs.Json.t -> Protocols.Election.instance -> target
(** Budget is the instance's [step_bound]; no extra single-writer or
    bound claims.  [subject] defaults to [Null]. *)

type mode =
  | Auto  (** [Exhaustive] iff [n * budget <= 12], else [Sample 64] *)
  | Exhaustive
  | Sample of int  (** that many seeded random schedules *)

(** The static analysis plane ({!Static_check}): *)
type static_mode =
  | Static_off  (** dynamic analyzers only (the default; output unchanged) *)
  | Static_only
      (** static rules only — no schedule is executed, no symbolic audit
          runs; the report's [stats.schedules] is [0] *)
  | Static_and_dynamic
      (** both planes, plus: every analyzed execution is cross-checked
          against the effect summary ([static-soundness]); a complete
          summary with every process statically bounded within budget
          replaces the symbolic wait-freedom audit (the pre-pass); and a
          dynamic finding whose static counterpart flagged the same
          location is dropped, so each root cause reports once *)

val lint :
  ?mode:mode ->
  ?static:static_mode ->
  ?static_options:Lepower_static.Absint.options ->
  ?register_budget:int ->
  ?rules:string list ->
  ?max_nodes:int ->
  ?max_steps:int ->
  ?shrink:bool ->
  ?on_repro:(Runtime.Repro.t -> Runtime.Repro.shrink_stats option -> unit) ->
  ?progress:(int -> unit) ->
  target ->
  Report.t
(** [rules] keeps only findings whose rule name is listed (default: all).
    [max_nodes] caps the symbolic audit ({!Waitfree_check.audit});
    [max_steps] overrides the per-execution step cap.

    [static] (default [Static_off]) selects the {!static_mode};
    [static_options] overrides the abstract interpreter's caps (default:
    {!Lepower_static.Absint.default_options} with the depth cap raised
    to at least twice the target's budget); [register_budget] turns the
    register accountant's census into an error when the protocol's
    static footprint exceeds it.

    [on_repro]: in sampled mode, every seeded run is recorded through
    {!Runtime.Repro.record}; the first {e failing} run (reportable
    finding, step-limit hit, or per-process budget overrun) has its
    certificate — carrying the target's [subject] and the failure
    message — handed to the callback, after delta-debugging minimization
    when [shrink] is [true] (the shrink stats come along; [None] when
    shrinking was off).  Exhaustive mode never records: use
    {!Protocols.Election.explore_repro} for whole-space certificates.

    [progress]: called after every analyzed schedule with the count so
    far, in both modes — drive heartbeats from here. *)

val lint_instance :
  ?mode:mode ->
  ?static:static_mode ->
  ?rules:string list ->
  ?max_nodes:int ->
  ?max_steps:int ->
  ?subject:Lepower_obs.Json.t ->
  Protocols.Election.instance ->
  Report.t

(** {1 Seeded-bug fixtures}

    Each fixture plants one intended defect and must trigger exactly its
    rule — the analyzer's regression suite and the CLI's demo subjects. *)

val broken_swmr_fixture : ?flip:bool -> unit -> target
(** Two processes write one location declared single-writer (but bound to
    a multi-writer spec, so only the trace checker can object):
    [swmr-discipline].  [flip] (default [false]) is the DFS-adversarial
    variant: the second writer writes only when scheduled before the
    first one's write — the order DFS tries last — and two pad readers
    inflate the violation-free subtree the exhaustive walk must exhaust
    first.  The fuzz benchmark's second fixture. *)

val broken_cas_fixture : ?n:int -> ?flip:bool -> unit -> target
(** A cas(n+1) register claimed to be cas(3) driven by [n] processes
    (default 3, the minimum): any schedule running p0, p1, p2 in that
    relative order feeds it 4 distinct values: [bounded-value].  Larger
    [n] pads the schedule with processes irrelevant to the violation —
    the shrinker's reference workload.  [flip] (default [false])
    reverses the chain (p2's cas, then p1's, then p0's) so the violating
    order is the one depth-first search reaches {e last}; with [n > 3]
    the pad processes can never cas successfully and exist purely to
    blow up the subtrees DFS must exhaust before winning — the fuzz
    benchmark's headline fixture. *)

val spin_fixture : unit -> target
(** A process spinning on a flag nobody sets: the symbolic audit exceeds
    the budget and execution corroborates (every run truncates):
    [wait-freedom]. *)

val fixtures : unit -> target list

(** {1 Fuzzing} *)

val fuzz_target :
  ?runs:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?plan:Runtime.Faults.plan ->
  ?kind:Runtime.Fuzz.sched_kind ->
  ?shrink:bool ->
  ?backend:Runtime.Engine.backend ->
  ?progress:(Runtime.Fuzz.progress -> unit) ->
  target ->
  Runtime.Fuzz.outcome
(** Fuzz a target with {!Runtime.Fuzz.campaign}: each run starts from a
    fresh configuration of the target's bindings and programs; a final
    configuration fails when it has a reportable {!Trace_check} or
    {!Bounded_check} finding or a process exceeded the target's step
    budget (the same predicate [Repro_subject.of_target] resolves, so
    the emitted certificate — carrying the target's [subject] — replays
    through [lepower replay]).  Defaults follow
    {!Runtime.Fuzz.campaign}; [max_steps] defaults to the same
    per-execution cap sampled lint uses. *)
