(** Bounded-value lint: the executable form of the paper's space bound.

    A compare&swap-(k) register may ever hold at most [k] distinct values
    — ⊥ plus Σ's [k−1] symbols — and the sequence of values it actually
    takes must be a legal Σ-history: it starts at ⊥, never repeats a
    symbol consecutively (a successful c&s changes the value), and first
    uses of symbols occur in label order ({!Core.Sigma},
    {!Core.Label}).  This module certifies those facts over concrete
    executions:

    - {!check} replays a {!Runtime.Trace.t} through the store's
      sequential specs, reconstructs each bounded location's value
      timeline, and lints it ([replay-divergence] when the trace is not
      even reproducible by the specs, then the history rules below);
    - {!check_history} lints one already-reconstructed Σ-history — the
      entry point the emulation run path uses on each label's history,
      next to {!Core.Invariants}.

    Rules: [bounded-value] (more than [k−1] distinct non-⊥ values, or a
    symbol escaping the alphabet), [sigma-history] (not starting at ⊥,
    consecutive repetition, non-Σ state), [label-order] (first uses
    not forming — or not following — a legal label), [sticky-discipline]
    (a sticky register changing value more than once) and
    [replay-divergence]. *)

val check :
  ?bounds:(string * int) list ->
  store:Memory.Store.t ->
  Runtime.Trace.t ->
  Finding.t list
(** [check ~store trace] — [store] must be the pre-run store.  Locations
    with spec type [cas(k)] are certified against their own [k]; entries
    in [bounds] override (or, for object types without an intrinsic
    alphabet such as [swap], declare) the bound for a location — that is
    how a lint declares "this register was supposed to be a cas(k)" and
    catches a location fed [k+1] values. *)

val check_history :
  ?label:Core.Label.t ->
  k:int ->
  loc:string ->
  Core.Sigma.t list ->
  Finding.t list
(** Lint one Σ-history (oldest first, starting at ⊥).  When [label] is
    given, the history's first uses must additionally follow that label's
    order (the emulation's Definition 1 obligation). *)
