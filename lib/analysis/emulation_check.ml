module Emulation = Core.Emulation
module Label = Core.Label
module History_tree = Core.History_tree

let check t =
  let k = Emulation.k t in
  Core.History_tree.active_labels (Emulation.shared_tree t)
  |> List.concat_map (fun label ->
         let loc = Fmt.str "history[%s]" (Label.to_string label) in
         Bounded_check.check_history ~label ~k ~loc
           (Emulation.history_of t label))
  |> Finding.dedup
