module Value = Memory.Value
module Engine = Runtime.Engine
module Explore = Runtime.Explore
module Sched = Runtime.Sched
module Election = Protocols.Election

type target = {
  name : string;
  bindings : (string * Memory.Spec.t) list;
  programs : Runtime.Program.prim list;
  budget : int;
  single_writer : string list;
  bounds : (string * int) list;
}

let target_of_instance (t : Election.instance) =
  {
    name = t.Election.name;
    bindings = t.Election.bindings;
    programs = List.init t.Election.n t.Election.program;
    budget = t.Election.step_bound;
    single_writer = [];
    bounds = [];
  }

type mode = Auto | Exhaustive | Sample of int

(* Exhaustive interleaving search is only tractable when the whole system
   performs a handful of operations; beyond that we sample seeded random
   schedules, matching the protocol harness's own checking strategy. *)
let exhaustive_feasible t = List.length t.programs * t.budget <= 12

let default_seeds = 64

let m_targets = Lepower_obs.Metrics.counter "lint.targets"
let m_schedules = Lepower_obs.Metrics.counter "lint.schedules_analyzed"
let m_findings = Lepower_obs.Metrics.counter "lint.findings"

let lint ?(mode = Auto) ?rules ?max_nodes ?max_steps t =
  Lepower_obs.Metrics.incr m_targets;
  Lepower_obs.Span.with_span "lint.target"
    ~args:[ ("name", Lepower_obs.Json.String t.name) ]
  @@ fun () ->
  let store = Memory.Store.create t.bindings in
  let n = List.length t.programs in
  let findings = ref [] in
  let max_proc_steps = ref 0 in
  let truncated = ref 0 in
  let schedules = ref 0 in
  let observe_steps (config : Engine.config) =
    Array.iter
      (fun (p : Runtime.Proc.t) ->
        if p.Runtime.Proc.steps > !max_proc_steps then
          max_proc_steps := p.Runtime.Proc.steps)
      config.Engine.procs
  in
  let analyze (config : Engine.config) =
    incr schedules;
    Lepower_obs.Metrics.incr m_schedules;
    observe_steps config;
    let trace = Engine.trace config in
    findings :=
      Bounded_check.check ~bounds:t.bounds ~store trace
      @ Trace_check.check ~single_writer:t.single_writer ~store trace
      @ !findings
  in
  let exhaustive =
    match mode with
    | Exhaustive -> true
    | Sample _ -> false
    | Auto -> exhaustive_feasible t
  in
  let config () = Engine.init store t.programs in
  (if exhaustive then begin
     let max_steps =
       Option.value ~default:((t.budget * max n 1 * 2) + 8) max_steps
     in
     let stats =
       Explore.explore ~max_steps ~analyze
         ~on_truncated:(fun config ->
           incr truncated;
           observe_steps config)
         (config ())
     in
     ignore stats.Explore.terminals
   end
   else
     let seeds = match mode with Sample s -> s | _ -> default_seeds in
     let max_steps =
       Option.value ~default:((t.budget * max n 1 * 2) + 1000) max_steps
     in
     for seed = 0 to seeds - 1 do
       let outcome =
         Engine.run ~max_steps ~sched:(Sched.random ~seed) (config ())
       in
       if outcome.Engine.hit_step_limit then incr truncated;
       analyze outcome.Engine.final
     done);
  (* Wait-freedom: the symbolic audit flags programs that admit an
     unbounded adversarial op sequence; executions corroborate (or
     refute) the flag — see Waitfree_check's doc on over-approximation. *)
  let audits =
    Waitfree_check.audit_programs ?max_nodes ~store ~budget:t.budget t.programs
  in
  let corroborated = !truncated > 0 || !max_proc_steps > t.budget in
  List.iter
    (fun (pid, verdict) ->
      let loc = Printf.sprintf "p%d" pid in
      match verdict with
      | Waitfree_check.Exceeded { budget; witness } ->
        let path = Waitfree_check.witness_summary witness in
        if corroborated then
          findings :=
            Finding.v ~rule:"wait-freedom" ~loc
              "program admits > %d ops under an adversarial responder \
               (witness: %s), corroborated by execution (%d truncated runs, \
               max %d steps/proc observed)"
              budget path !truncated !max_proc_steps
            :: !findings
        else
          findings :=
            Finding.v ~severity:Finding.Info ~rule:"wait-freedom" ~loc
              "symbolic audit exceeds budget %d (witness: %s) but no \
               analyzed execution corroborates it (max %d steps/proc \
               observed); recorded, not reported"
              budget path !max_proc_steps
            :: !findings
      | Waitfree_check.Bounded b ->
        if !max_proc_steps > b then
          findings :=
            Finding.v ~rule:"waitfree-mismatch" ~loc
              "audited bound %d ops, but an execution performed %d — the \
               responder model missed reachable responses"
              b !max_proc_steps
            :: !findings
      | Waitfree_check.Inconclusive { explored } ->
        findings :=
          Finding.v ~severity:Finding.Info ~rule:"wait-freedom" ~loc
            "audit inconclusive after %d explored nodes" explored
          :: !findings)
    audits;
  if !max_proc_steps > t.budget then
    findings :=
      Finding.v ~rule:"wait-freedom" ~loc:t.name
        "an analyzed execution performed %d steps on one process, above \
         the declared budget %d"
        !max_proc_steps t.budget
      :: !findings;
  let findings =
    Finding.dedup !findings
    |> List.filter (fun (f : Finding.t) ->
           match rules with
           | None -> true
           | Some rs -> List.exists (String.equal f.Finding.rule) rs)
  in
  Lepower_obs.Metrics.incr m_findings ~by:(List.length findings);
  {
    Report.subject = t.name;
    findings;
    stats =
      Some
        {
          Report.schedules = !schedules;
          truncated = !truncated;
          max_proc_steps = !max_proc_steps;
          exhaustive;
        };
    audits;
  }

let lint_instance ?mode ?rules ?max_nodes ?max_steps instance =
  lint ?mode ?rules ?max_nodes ?max_steps (target_of_instance instance)

(* --- seeded-bug fixtures ---------------------------------------------- *)

let broken_swmr_fixture () =
  (* Two writers share one register that the protocol treats as
     single-writer — but it was (wrongly) bound to the multi-writer spec,
     so the object itself cannot catch the discipline violation.  The
     trace checker must. *)
  let program pid =
    let open Runtime.Program in
    complete
      (let* () = Objects.Register.write "r" (Value.int pid) in
       let* v = Objects.Register.read "r" in
       return v)
  in
  {
    name = "fixture-broken-swmr";
    bindings = [ ("r", Objects.Register.mwmr ~init:(Value.int (-1)) ()) ];
    programs = [ program 0; program 1 ];
    budget = 2;
    single_writer = [ "r" ];
    bounds = [];
  }

let broken_cas_fixture () =
  (* The register was provisioned as a cas(4) but the protocol's space
     certificate claims cas(3): under the schedule p0; p1; p2 the chain
     ⊥→0→1→2 feeds it k+1 = 4 distinct values (counting ⊥), one more
     than the declared alphabet admits. *)
  let program pid =
    let open Runtime.Program in
    let expected =
      if pid = 0 then Objects.Cas_k.bottom else Value.int (pid - 1)
    in
    complete
      (let* prev =
         Objects.Cas_k.cas "C" ~expected ~desired:(Value.int pid)
       in
       return prev)
  in
  {
    name = "fixture-broken-cas";
    bindings = [ ("C", Objects.Cas_k.spec ~k:4) ];
    programs = [ program 0; program 1; program 2 ];
    budget = 1;
    single_writer = [];
    bounds = [ ("C", 3) ];
  }

let spin_fixture () =
  (* A repeat_until loop whose exit condition only the environment can
     satisfy — and nobody ever does: the canonical unbounded op sequence
     the wait-freedom auditor exists to flag. *)
  let program =
    let open Runtime.Program in
    complete
      (let* v =
         repeat_until (fun () ->
             let* v = Objects.Register.read "flag" in
             if Value.equal v (Value.sym "go") then return (Some v)
             else return None)
       in
       return v)
  in
  {
    name = "fixture-spin";
    bindings = [ ("flag", Objects.Register.mwmr ~init:(Value.sym "wait") ()) ];
    programs = [ program ];
    budget = 4;
    single_writer = [];
    bounds = [];
  }

let fixtures () = [ broken_swmr_fixture (); broken_cas_fixture (); spin_fixture () ]
