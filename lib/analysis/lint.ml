module Value = Memory.Value
module Engine = Runtime.Engine
module Explore = Runtime.Explore
module Sched = Runtime.Sched
module Election = Protocols.Election

type target = {
  name : string;
  bindings : (string * Memory.Spec.t) list;
  programs : Runtime.Program.prim list;
  budget : int;
  single_writer : string list;
  bounds : (string * int) list;
  subject : Lepower_obs.Json.t;
}

let target_of_instance ?(subject = Lepower_obs.Json.Null)
    (t : Election.instance) =
  {
    name = t.Election.name;
    bindings = t.Election.bindings;
    programs = List.init t.Election.n t.Election.program;
    budget = t.Election.step_bound;
    single_writer = [];
    bounds = [];
    subject;
  }

type mode = Auto | Exhaustive | Sample of int
type static_mode = Static_off | Static_only | Static_and_dynamic

(* Exhaustive interleaving search is only tractable when the whole system
   performs a handful of operations; beyond that we sample seeded random
   schedules, matching the protocol harness's own checking strategy. *)
let exhaustive_feasible t = List.length t.programs * t.budget <= 12

let default_seeds = 64

let m_targets = Lepower_obs.Metrics.counter "lint.targets"
let m_schedules = Lepower_obs.Metrics.counter "lint.schedules_analyzed"
let m_findings = Lepower_obs.Metrics.counter "lint.findings"
let ph_check = Lepower_prof.Phase.make "lint.check"

let lint ?(mode = Auto) ?(static = Static_off) ?static_options
    ?register_budget ?rules ?max_nodes ?max_steps ?(shrink = false) ?on_repro
    ?progress t =
  Lepower_obs.Metrics.incr m_targets;
  Lepower_obs.Span.with_span "lint.target"
    ~args:[ ("name", Lepower_obs.Json.String t.name) ]
  @@ fun () ->
  let store = Memory.Store.create t.bindings in
  let n = List.length t.programs in
  let findings = ref [] in
  (* The static plane: effect summaries, computed before (and, in
     [Static_only], instead of) any execution. *)
  let static_analysis =
    match static with
    | Static_off -> None
    | Static_only | Static_and_dynamic ->
      let options =
        match static_options with
        | Some o -> o
        | None ->
          (* A correct straight-line protocol must classify as [Bounded]
             within its own budget; loops hit the cap regardless. *)
          {
            Lepower_static.Absint.default_options with
            Lepower_static.Absint.depth_cap =
              max Lepower_static.Absint.default_options
                    .Lepower_static.Absint.depth_cap (2 * t.budget);
          }
      in
      Some (Static_check.analyze ~options ~bounds:t.bounds ~bindings:t.bindings
              t.programs)
  in
  let dynamic = static <> Static_only in
  (match static_analysis with
  | None -> ()
  | Some a ->
    findings :=
      Static_check.findings ?register_budget ~name:t.name ~budget:t.budget
        ~single_writer:t.single_writer ~bindings:t.bindings a
      @ !findings);
  let max_proc_steps = ref 0 in
  let truncated = ref 0 in
  let schedules = ref 0 in
  let module View = Engine.Config_view in
  let observe_steps view =
    let s = View.max_steps_per_proc view in
    if s > !max_proc_steps then max_proc_steps := s
  in
  (* The trace lints are inherently global-order checks, so the hook
     materializes the trace through the view.  Lint's exhaustive path
     runs the plain explorer with no dedup/POR (the lints need every
     interleaving's order anyway), so this is sound — and the reason
     lint hooks must never be combined with the reductions. *)
  let findings_of view =
    let tok = Lepower_prof.Phase.enter ph_check in
    let trace = View.trace view in
    let fs =
      Bounded_check.check ~bounds:t.bounds ~store trace
      @ Trace_check.check ~single_writer:t.single_writer ~store trace
    in
    Lepower_prof.Phase.leave tok;
    fs
  in
  let note fs view =
    incr schedules;
    Lepower_obs.Metrics.incr m_schedules;
    observe_steps view;
    findings := fs @ !findings;
    match progress with Some f -> f !schedules | None -> ()
  in
  (* Soundness cross-check: every analyzed execution must stay inside the
     effect summary (locations in footprints, states in Σ̂) — a violation
     is an abstract-interpreter bug, not a protocol bug. *)
  let soundness_of view =
    match (static, static_analysis) with
    | Static_and_dynamic, Some a ->
      Static_check.soundness_findings ~name:t.name ~store
        a.Static_check.summary (View.trace view)
    | _ -> []
  in
  let analyze view = note (findings_of view @ soundness_of view) view in
  let exhaustive =
    match mode with
    | Exhaustive -> true
    | Sample _ -> false
    | Auto -> exhaustive_feasible t
  in
  let config () = Engine.init store t.programs in
  (* What makes one execution a failure — the same predicate drives both
     per-seed certificate recording and shrink-candidate validation.
     [hit_step_limit] is not recoverable from a replayed configuration,
     but a truncated run's process stepped past the budget, which is. *)
  let failing_config view =
    List.exists Finding.is_reportable (findings_of view)
    || View.max_steps_per_proc view > t.budget
  in
  (if not dynamic then ()
   else if exhaustive then begin
     let max_steps =
       Option.value ~default:((t.budget * max n 1 * 2) + 8) max_steps
     in
     let stats =
       Explore.explore
         ~options:
           {
             Explore.Options.default with
             max_steps;
             analyze = Some analyze;
             on_truncated =
               Some
                 (fun view ->
                   incr truncated;
                   observe_steps view);
           }
         (config ())
     in
     ignore stats.Explore.terminals
   end
   else
     let seeds = match mode with Sample s -> s | _ -> default_seeds in
     let max_steps =
       Option.value ~default:((t.budget * max n 1 * 2) + 1000) max_steps
     in
     let recorded = ref false in
     for seed = 0 to seeds - 1 do
       let sched = Sched.random ~seed in
       match on_repro with
       | None ->
         let outcome = Engine.run ~max_steps ~sched (config ()) in
         if outcome.Engine.hit_step_limit then incr truncated;
         analyze (View.of_config outcome.Engine.final)
       | Some report ->
         let outcome, cert =
           Runtime.Repro.record ~subject:t.subject ~seed ~max_steps ~sched
             (config ())
         in
         if outcome.Engine.hit_step_limit then incr truncated;
         let final_view = View.of_config outcome.Engine.final in
         let fs = findings_of final_view in
         note fs final_view;
         let failed =
           List.exists Finding.is_reportable fs
           || outcome.Engine.hit_step_limit
           || View.max_steps_per_proc final_view > t.budget
         in
         if failed && not !recorded then begin
           recorded := true;
           let message =
             match List.find_opt Finding.is_reportable fs with
             | Some f ->
               Printf.sprintf "%s: %s" f.Finding.rule f.Finding.detail
             | None ->
               if outcome.Engine.hit_step_limit then
                 "run hit the step limit (possible livelock)"
             else "per-process step budget exceeded"
           in
           let cert = Runtime.Repro.with_message cert message in
           let cert, stats =
             if shrink then
               let cert, stats =
                 Runtime.Repro.shrink ~failing:failing_config
                   ~config0:(config ()) cert
               in
               (cert, Some stats)
             else (cert, None)
           in
           report cert stats
         end
     done);
  (* Wait-freedom: the symbolic audit flags programs that admit an
     unbounded adversarial op sequence; executions corroborate (or
     refute) the flag — see Waitfree_check's doc on over-approximation. *)
  let statically_waitfree =
    (* The pre-pass: a complete summary whose every process is statically
       bounded within budget subsumes the symbolic audit — the audit
       walks the same trees against a (no larger) pooled responder, so it
       could only confirm.  All-or-nothing: auditing a subset of
       processes would see a differently-seeded response pool. *)
    match static_analysis with
    | Some a when a.Static_check.summary.Lepower_static.Summary.complete ->
      let bounds_ok (p : Lepower_static.Summary.per_pid) =
        match p.Lepower_static.Summary.op_bound with
        | Lepower_static.Summary.Bounded b when b <= t.budget -> Some (p, b)
        | Lepower_static.Summary.Bounded _ | Lepower_static.Summary.Unbounded
          ->
          None
      in
      let pids =
        List.filter_map bounds_ok
          a.Static_check.summary.Lepower_static.Summary.per_pid
      in
      if
        List.length pids
        = List.length a.Static_check.summary.Lepower_static.Summary.per_pid
      then
        Some
          (List.map
             (fun ((p : Lepower_static.Summary.per_pid), b) ->
               (p.Lepower_static.Summary.pid, Waitfree_check.Bounded b))
             pids)
      else None
    | _ -> None
  in
  let audits =
    if not dynamic then []
    else
      match statically_waitfree with
      | Some audits -> audits
      | None ->
        Waitfree_check.audit_programs ?max_nodes ~store ~budget:t.budget
          t.programs
  in
  let corroborated = !truncated > 0 || !max_proc_steps > t.budget in
  List.iter
    (fun (pid, verdict) ->
      let loc = Printf.sprintf "p%d" pid in
      match verdict with
      | Waitfree_check.Exceeded { budget; witness } ->
        let path = Waitfree_check.witness_summary witness in
        if corroborated then
          findings :=
            Finding.v ~rule:"wait-freedom" ~loc
              "program admits > %d ops under an adversarial responder \
               (witness: %s), corroborated by execution (%d truncated runs, \
               max %d steps/proc observed)"
              budget path !truncated !max_proc_steps
            :: !findings
        else
          findings :=
            Finding.v ~severity:Finding.Info ~rule:"wait-freedom" ~loc
              "symbolic audit exceeds budget %d (witness: %s) but no \
               analyzed execution corroborates it (max %d steps/proc \
               observed); recorded, not reported"
              budget path !max_proc_steps
            :: !findings
      | Waitfree_check.Bounded b ->
        if !max_proc_steps > b then
          findings :=
            Finding.v ~rule:"waitfree-mismatch" ~loc
              "audited bound %d ops, but an execution performed %d — the \
               responder model missed reachable responses"
              b !max_proc_steps
            :: !findings
      | Waitfree_check.Inconclusive { explored } ->
        findings :=
          Finding.v ~severity:Finding.Info ~rule:"wait-freedom" ~loc
            "audit inconclusive after %d explored nodes" explored
          :: !findings)
    audits;
  if !max_proc_steps > t.budget then
    findings :=
      Finding.v ~rule:"wait-freedom" ~loc:t.name
        "an analyzed execution performed %d steps on one process, above \
         the declared budget %d"
        !max_proc_steps t.budget
      :: !findings;
  let findings =
    Finding.dedup !findings
    |> (fun fs ->
         (* Cross-plane dedup: when a static rule and its dynamic
            counterpart flag the same location, the root cause is one —
            keep the static finding (it carries the no-schedule-needed
            evidence) and drop the corroborating dynamic one.  Only
            active with the static plane on, so plain lint output is
            untouched. *)
         if static = Static_off then fs
         else
           let static_key (f : Finding.t) =
             if String.length f.Finding.rule >= 7
                && String.sub f.Finding.rule 0 7 = "static-"
             then Some (f.Finding.rule, f.Finding.loc)
             else None
           in
           let statics = List.filter_map static_key fs in
           List.filter
             (fun (f : Finding.t) ->
               match Static_check.counterpart f.Finding.rule with
               | Some s ->
                 not
                   (List.exists
                      (fun (rule, loc) ->
                        String.equal rule s && String.equal loc f.Finding.loc)
                      statics)
               | None -> true)
             fs)
    |> List.filter (fun (f : Finding.t) ->
           match rules with
           | None -> true
           | Some rs -> List.exists (String.equal f.Finding.rule) rs)
  in
  Lepower_obs.Metrics.incr m_findings ~by:(List.length findings);
  {
    Report.subject = t.name;
    findings;
    stats =
      Some
        {
          Report.schedules = !schedules;
          truncated = !truncated;
          max_proc_steps = !max_proc_steps;
          exhaustive = exhaustive && dynamic;
        };
    audits;
  }

let lint_instance ?mode ?static ?rules ?max_nodes ?max_steps ?subject instance
    =
  lint ?mode ?static ?rules ?max_nodes ?max_steps
    (target_of_instance ?subject instance)

(* --- seeded-bug fixtures ---------------------------------------------- *)

(* The subject descriptor [Repro_subject.resolve] rebuilds fixtures
   from; kept next to the fixtures so the two stay in sync. *)
let fixture_subject ?n ?(flip = false) name =
  Lepower_obs.Json.Obj
    ([ ("kind", Lepower_obs.Json.String "fixture");
       ("name", Lepower_obs.Json.String name) ]
    @ (match n with None -> [] | Some n -> [ ("n", Lepower_obs.Json.Int n) ])
    @ if flip then [ ("flip", Lepower_obs.Json.Bool true) ] else [])

let broken_swmr_fixture ?(flip = false) () =
  (* Two writers share one register that the protocol treats as
     single-writer — but it was (wrongly) bound to the multi-writer spec,
     so the object itself cannot catch the discipline violation.  The
     trace checker must.

     [flip] is the DFS-adversarial variant: the second writer only
     writes when its read still sees the initial value, so the
     violation needs p1 scheduled {e before} p0's write — the schedule
     order DFS tries {e last} among the first decisions — and pad
     readers inflate the non-violating p0-first subtree the exhaustive
     walk must exhaust before getting there.  Randomized schedulers hit
     the required order in a handful of runs; this is the honest
     benchmark fixture for fuzz-vs-DFS time-to-first-violation. *)
  let init = Value.int (-1) in
  let program pid =
    let open Runtime.Program in
    complete
      (let* () = Objects.Register.write "r" (Value.int pid) in
       let* v = Objects.Register.read "r" in
       return v)
  in
  let flip_writer =
    let open Runtime.Program in
    complete
      (let* v = Objects.Register.read "r" in
       if Value.equal v init then
         let* () = Objects.Register.write "r" (Value.int 1) in
         return (Value.int 1)
       else return v)
  in
  let pad_reader =
    let open Runtime.Program in
    complete
      (let* _ = Objects.Register.read "r" in
       let* v = Objects.Register.read "r" in
       return v)
  in
  {
    name = (if flip then "fixture-broken-swmr-flip" else "fixture-broken-swmr");
    bindings = [ ("r", Objects.Register.mwmr ~init ()) ];
    programs =
      (* Two pad readers put the p0-first subtree at ~25k schedules —
         enough that exhaustive DFS pays for its ordering, small enough
         that the benchmark still terminates quickly. *)
      (if flip then [ program 0; flip_writer; pad_reader; pad_reader ]
       else [ program 0; program 1 ]);
    budget = 2;
    single_writer = [ "r" ];
    bounds = [];
    subject = fixture_subject ~flip "broken-swmr";
  }

(* Attempts per pad process in the flip variant of [broken_cas_fixture]:
   with p pads the violation-free subtrees DFS must exhaust hold
   (2 + p*flip_pad_ops)! / (flip_pad_ops!)^p schedules each. *)
let flip_pad_ops = 4

let broken_cas_fixture ?(n = 3) ?(flip = false) () =
  (* The register was provisioned as a cas(n+1) but the protocol's space
     certificate claims cas(3): under any schedule running p0; p1; p2 in
     that relative order the chain ⊥→0→1→2 stores 4 distinct values
     (counting ⊥), one more than the declared alphabet admits.  With
     [n > 3] the extra processes extend the chain but are not needed for
     the violation — which is exactly what makes this the shrinker's
     reference fixture: of an [n]-decision failing schedule only the
     first three processes' steps must survive minimization.

     [flip] is the DFS-adversarial variant: the chain runs in
     {e descending} pid order — p2 cas(⊥→1), p1 cas(1→0), p0 cas(0→2) —
     and only the {e last} link stores the escaping value 2.  Each
     process gets a single cas attempt, so any schedule that runs p0 or
     p1 before its expected value is present burns that link and the
     escape never happens: the violation lives only in schedules whose
     first chain step is p2's — the exact opposite of the ascending pid
     order DFS tries first, so the exhaustive walk must exhaust the
     entire (violation-free) p0-first and p1-first subtrees before it
     can win, while a randomized scheduler hits the descending order
     with probability ~1/6 per run.  Processes beyond the first three
     anchor their expected value one above anything ever stored, so
     they never succeed; each makes [flip_pad_ops] attempts, purely to
     inflate the subtrees DFS drowns in. *)
  if n < 3 then invalid_arg "broken_cas_fixture: needs n >= 3";
  let program pid =
    let open Runtime.Program in
    if flip && pid >= 3 then
      (* pad: [pid + 1] is never stored, these cas never fire *)
      let rec attempts left =
        if left = 1 then
          let* prev =
            Objects.Cas_k.cas "C" ~expected:(Value.int (pid + 1))
              ~desired:(Value.int pid)
          in
          return prev
        else
          let* _ =
            Objects.Cas_k.cas "C" ~expected:(Value.int (pid + 1))
              ~desired:(Value.int pid)
          in
          attempts (left - 1)
      in
      complete (attempts flip_pad_ops)
    else
      let expected, desired =
        if flip then
          match pid with
          | 2 -> (Objects.Cas_k.bottom, Value.int 1)
          | 1 -> (Value.int 1, Value.int 0)
          | _ -> (Value.int 0, Value.int 2)
        else
          ( (if pid = 0 then Objects.Cas_k.bottom else Value.int (pid - 1)),
            Value.int pid )
      in
      complete
        (let* prev = Objects.Cas_k.cas "C" ~expected ~desired in
         return prev)
  in
  {
    name = (if flip then "fixture-broken-cas-flip" else "fixture-broken-cas");
    bindings = [ ("C", Objects.Cas_k.spec ~k:(n + 1)) ];
    programs = List.init n program;
    budget = (if flip && n > 3 then flip_pad_ops else 1);
    single_writer = [];
    bounds = [ ("C", 3) ];
    subject = fixture_subject ~n ~flip "broken-cas";
  }

let spin_fixture () =
  (* A repeat_until loop whose exit condition only the environment can
     satisfy — and nobody ever does: the canonical unbounded op sequence
     the wait-freedom auditor exists to flag. *)
  let program =
    let open Runtime.Program in
    complete
      (let* v =
         repeat_until (fun () ->
             let* v = Objects.Register.read "flag" in
             if Value.equal v (Value.sym "go") then return (Some v)
             else return None)
       in
       return v)
  in
  {
    name = "fixture-spin";
    bindings = [ ("flag", Objects.Register.mwmr ~init:(Value.sym "wait") ()) ];
    programs = [ program ];
    budget = 4;
    single_writer = [];
    bounds = [];
    subject = fixture_subject "spin";
  }

let fixtures () = [ broken_swmr_fixture (); broken_cas_fixture (); spin_fixture () ]

(* --- fuzzing ----------------------------------------------------------- *)

let fuzz_target ?runs ?seed ?max_steps ?plan ?kind ?shrink ?backend ?progress
    (t : target) =
  let store = Memory.Store.create t.bindings in
  let n = List.length t.programs in
  let max_steps =
    Option.value ~default:((t.budget * max n 1 * 2) + 1000) max_steps
  in
  (* The same failure predicate [Repro_subject.of_target] builds — kept
     textually close to [failing_config] above so the certificate a fuzz
     campaign emits fails under exactly the predicate replay re-checks. *)
  let failing view =
    let trace = Engine.Config_view.trace view in
    let findings =
      Bounded_check.check ~bounds:t.bounds ~store trace
      @ Trace_check.check ~single_writer:t.single_writer ~store trace
    in
    match List.find_opt Finding.is_reportable findings with
    | Some f -> Some (Printf.sprintf "%s: %s" f.Finding.rule f.Finding.detail)
    | None ->
      if Engine.Config_view.max_steps_per_proc view > t.budget then
        Some (Printf.sprintf "per-process step budget %d exceeded" t.budget)
      else None
  in
  Runtime.Fuzz.campaign ?runs ?seed ~max_steps ?plan ?kind ?shrink ?backend
    ?progress ~subject:t.subject ~failing (fun () ->
      Engine.init store t.programs)
