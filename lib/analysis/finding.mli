(** The one report type every analyzer in [Lepower_check] emits.

    A finding names the rule that fired, how bad it is, the shared-memory
    location (or other locus) it concerns, and a human-readable detail.
    Analyzers over exhaustive explorations fire the same finding once per
    violating schedule, so consumers deduplicate with {!dedup} before
    reporting. *)

type severity =
  | Error  (** the checked discipline is definitely violated *)
  | Warning  (** suspicious but not a proven violation *)
  | Info  (** telemetry: recorded in reports, never fails a lint run *)

type t = { rule : string; severity : severity; loc : string; detail : string }

val v :
  ?severity:severity ->
  rule:string ->
  loc:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v ~rule ~loc fmt …] builds a finding with a formatted detail;
    [severity] defaults to [Error]. *)

val severity_name : severity -> string
val compare : t -> t -> int
(** Orders by severity (errors first), then rule, loc, detail. *)

val equal : t -> t -> bool

val dedup : t list -> t list
(** Sorted and deduplicated (see {!compare}). *)

val is_reportable : t -> bool
(** Errors and warnings fail a lint run; [Info] findings do not. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Lepower_obs.Json.t
(** One JSONL record: [{"type":"finding","rule":…,"severity":…,…}]. *)
