module Value = Memory.Value
module Program = Runtime.Program
module Spec = Memory.Spec

type verdict =
  | Bounded of int
  | Exceeded of { budget : int; witness : (string * Value.t) list }
  | Inconclusive of { explored : int }

(* Witnesses are [budget + 1] ops long; show a readable prefix. *)
let witness_summary ?(limit = 8) witness =
  let shown =
    List.filteri (fun i _ -> i < limit) witness |> List.map fst
  in
  let prefix = String.concat " → " shown in
  if List.length witness <= limit then prefix
  else Printf.sprintf "%s → … (%d ops)" prefix (List.length witness)

let pp_verdict ppf = function
  | Bounded b -> Fmt.pf ppf "bounded (≤ %d ops)" b
  | Exceeded { budget; witness } ->
    Fmt.pf ppf "exceeds budget %d (witness: %s)" budget
      (witness_summary witness)
  | Inconclusive { explored } ->
    Fmt.pf ppf "inconclusive (state space cap hit after %d nodes)" explored

module Vset = Set.Make (Value)

type responder = {
  respond : pid:int -> loc:string -> op:Value.t -> Value.t list;
}

let store_responder store =
  (* The adversarial environment: an operation may observe the object in
     any state the pooled execution has ever produced, not just the state
     this process's own ops would leave behind.  The pool grows as the
     audit walks programs — auditing all processes twice (as
     [audit_programs] does) lets every process see states produced by
     every other. *)
  let pool : (string, Vset.t) Hashtbl.t = Hashtbl.create 16 in
  let states loc =
    match Hashtbl.find_opt pool loc with
    | Some s -> s
    | None ->
      let s =
        match Memory.Store.peek store loc with
        | Some init -> Vset.singleton init
        | None -> Vset.empty
      in
      Hashtbl.replace pool loc s;
      s
  in
  let respond ~pid ~loc ~op =
    match Memory.Store.spec_of store loc with
    | None -> []
    | Some spec ->
      let responses = ref Vset.empty in
      Vset.iter
        (fun state ->
          match Spec.apply spec ~pid state op with
          | Error _ -> ()
          | Ok (state', resp) ->
            Hashtbl.replace pool loc (Vset.add state' (states loc));
            responses := Vset.add resp !responses)
        (states loc);
      Vset.elements !responses
  in
  { respond }

let audit ?(max_nodes = 100_000) ~budget ~responder ~pid prog =
  let nodes = ref 0 in
  let capped = ref false in
  let deepest = ref 0 in
  let exceeded = ref None in
  (* Depth-first: a runaway loop is found at depth budget+1 after only
     budget+1 nodes, long before the cap matters. *)
  let rec go prog depth path =
    if !exceeded <> None || !capped then ()
    else if depth > budget then exceeded := Some (List.rev path)
    else begin
      if depth > !deepest then deepest := depth;
      match prog with
      | Program.Done _ -> ()
      | Program.Step (loc, op, k) ->
        let responses = responder.respond ~pid ~loc ~op in
        List.iter
          (fun resp ->
            if !exceeded = None && not !capped then begin
              incr nodes;
              if !nodes > max_nodes then capped := true
              else
                match k resp with
                | exception _ ->
                  (* A raising continuation cannot take further steps —
                     the engine faults the process on a type error, and
                     any other exception only arises here because the
                     pooled responder feeds state combinations no real
                     execution produces.  Either way the path ends. *)
                  ()
                | next -> go next (depth + 1) ((loc, op) :: path)
            end)
          responses
    end
  in
  go prog 0 [];
  match !exceeded with
  | Some witness -> Exceeded { budget; witness }
  | None ->
    if !capped then Inconclusive { explored = !nodes } else Bounded !deepest

let audit_programs ?max_nodes ~store ~budget progs =
  let responder = store_responder store in
  let run () =
    List.mapi (fun pid prog -> (pid, audit ?max_nodes ~budget ~responder ~pid prog)) progs
  in
  (* First pass seeds the shared state pool with every process's writes;
     the second pass audits against the pooled (adversary-visible)
     states.  The verdicts of the second pass are the report. *)
  ignore (run ());
  run ()

let audit_instance ?max_nodes (t : Protocols.Election.instance) =
  let store = Memory.Store.create t.Protocols.Election.bindings in
  audit_programs ?max_nodes ~store ~budget:t.Protocols.Election.step_bound
    (List.init t.Protocols.Election.n t.Protocols.Election.program)
