(** The static lint plane: findings computed from
    {!Lepower_static} effect summaries, without executing a single
    schedule.

    Four rules, each the static counterpart of a dynamic analyzer:

    - [static-swmr] (↔ [swmr-discipline]): two processes' may-write sets
      meet on a location the target declares single-writer (or that is
      bound to the [swmr-reg] spec).  Reported even from an incomplete
      summary — a may-write entry is presence evidence: the interpreter
      saw the process issue that write.
    - [static-k-bound] (↔ [bounded-value]): a location's abstract state
      set Σ̂ provably exceeds its space bound (the [cas(k)] alphabet, or
      a declared bound), counting exactly as
      {!Bounded_check.check} does over a concrete timeline.
    - [static-loop-bound] (↔ [wait-freedom]): a process's walk hit the
      depth cap.  [Error] only when no path terminates under the pooled
      responder and the walk was not node-capped (a genuine spin);
      retry loops with a reachable exit and inconclusive walks are
      recorded at [Info] for the dynamic auditor to corroborate.
    - [static-register-budget]: the register accountant — always an
      [Info] census of static footprints (flagging unreachable
      bindings), an [Error] when [register_budget] is given and the
      protocol's footprint exceeds it.

    Soundness violations ({!soundness_findings}) use rule
    [static-soundness] at [Error]: an execution escaping its summary
    means the abstract interpreter itself is wrong. *)

type analysis = {
  summary : Lepower_static.Summary.t;
  certs : Lepower_static.Kbound.cert list;
  accountant : Lepower_static.Accountant.t;
}

val analyze :
  ?options:Lepower_static.Absint.options ->
  ?bounds:(string * int) list ->
  bindings:(string * Memory.Spec.t) list ->
  Runtime.Program.prim list ->
  analysis
(** Run {!Lepower_static.Absint.analyze} and derive the k-bound
    certificates and register census.  Pure — no engine state. *)

val findings :
  ?register_budget:int ->
  name:string ->
  budget:int ->
  single_writer:string list ->
  bindings:(string * Memory.Spec.t) list ->
  analysis ->
  Finding.t list
(** The four static rules over one analysis.  [name] anchors
    protocol-level findings (the accountant's census); [budget] is the
    target's claimed wait-freedom bound; [single_writer] and [bindings]
    scope the [static-swmr] rule exactly as {!Trace_check.check}'s
    dynamic counterpart. *)

val soundness_findings :
  name:string ->
  store:Memory.Store.t ->
  Lepower_static.Summary.t ->
  Runtime.Trace.t ->
  Finding.t list
(** {!Lepower_static.Soundness.check} as findings — empty unless the
    summary is complete (an incomplete summary promises nothing, so
    nothing is checked). *)

val counterpart : string -> string option
(** [counterpart dynamic_rule] — the static rule subsuming a dynamic
    rule's root cause ([swmr-discipline] → [static-swmr], etc.), for the
    driver's cross-plane dedup. *)
