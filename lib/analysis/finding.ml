type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = { rule : string; severity : severity; loc : string; detail : string }

let v ?(severity = Error) ~rule ~loc fmt =
  Fmt.kstr (fun detail -> { rule; severity; loc; detail }) fmt

let compare a b =
  (* Severity first so reports lead with what matters; then stable
     lexicographic order so deduplicated sets print deterministically. *)
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.loc b.loc in
      if c <> 0 then c else String.compare a.detail b.detail

let equal a b = compare a b = 0

module Fset = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let dedup findings = Fset.elements (Fset.of_list findings)

let is_reportable t = match t.severity with Error | Warning -> true | Info -> false

let pp ppf t =
  Fmt.pf ppf "[%s] %s @@ %s: %s" (severity_name t.severity) t.rule t.loc
    t.detail

let to_json t =
  Lepower_obs.Json.Obj
    [
      ("type", Lepower_obs.Json.String "finding");
      ("rule", Lepower_obs.Json.String t.rule);
      ("severity", Lepower_obs.Json.String (severity_name t.severity));
      ("loc", Lepower_obs.Json.String t.loc);
      ("detail", Lepower_obs.Json.String t.detail);
    ]
