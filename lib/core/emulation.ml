module Value = Memory.Value
module Program = Runtime.Program
module Imap = Map.Make (Int)
module Smap = Map.Make (String)
module Obs = Lepower_obs

(* Observability mirrors of [stats] — aggregated across every emulation
   in the process, no-ops unless Lepower_obs.Metrics is enabled. *)
let m_iterations = Obs.Metrics.counter "emulation.iterations"
let m_simple_ops = Obs.Metrics.counter "emulation.simple_ops"
let m_suspensions = Obs.Metrics.counter "emulation.suspensions"
let m_releases = Obs.Metrics.counter "emulation.releases"
let m_attaches = Obs.Metrics.counter "emulation.attaches"
let m_splits = Obs.Metrics.counter "emulation.splits"
let m_stalls = Obs.Metrics.counter "emulation.stall_events"
let m_decisions = Obs.Metrics.counter "emulation.decisions"
let m_rounds = Obs.Metrics.counter "emulation.staleview_rounds"

type algorithm = {
  name : string;
  k : int;
  cas_loc : string;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  num_vps : int;
}

let of_election (instance : Protocols.Election.instance) ~k =
  {
    name = instance.Protocols.Election.name;
    k;
    cas_loc = "C";
    bindings = instance.Protocols.Election.bindings;
    program = instance.Protocols.Election.program;
    num_vps = instance.Protocols.Election.n;
  }

type params = {
  m : int;
  batch : int;
  simple_burst : int;
  disable_rebalance : bool;
  disable_attach : bool;
}

let default_params ~k =
  let m = Bounds.emulators ~k in
  {
    m;
    batch = Bounds.suspension_batch ~k ~m;
    simple_burst = 1;
    disable_rebalance = false;
    disable_attach = false;
  }

let small_params ~k =
  let m = Bounds.emulators ~k in
  {
    m;
    batch = m;
    simple_burst = 8;
    disable_rebalance = false;
    disable_attach = false;
  }

type vp_status = Active | Suspended | Decided_vp of Value.t | Faulty of string

type vp = { prog : Program.prim; status : vp_status; steps : int }

type emu_state = {
  id : int;
  label : Label.t;
  vps : vp Imap.t;
  seq : int;
  decided : Value.t option;
  stalled : bool;
  iterations : int;
}

type shared = {
  tree : History_tree.t;
  graph : Vp_graph.t;
  registers : (Value.t * Label.t) list Smap.t;  (* newest first *)
  reg_inits : Value.t Smap.t;
}

type stats = {
  iterations : int;
  simple_ops : int;
  suspensions : int;
  releases : int;
  attaches : int;
  splits : int;
  stall_events : int;
}

let zero_stats =
  {
    iterations = 0;
    simple_ops = 0;
    suspensions = 0;
    releases = 0;
    attaches = 0;
    splits = 0;
    stall_events = 0;
  }

(* Analysis log: invisible to the emulators' logic; consumed by the
   invariant checker (E5), the replay checker (E4) and the history
   experiments (E8). *)
type event =
  | Ev_read of { vp : int; loc : string; value : Value.t; label : Label.t }
  | Ev_write of { vp : int; loc : string; value : Value.t; label : Label.t }
  | Ev_cas_fail of { vp : int; returned : Sigma.t; label : Label.t }
  | Ev_cas_success of { vp : int; edge : Sigma.t * Sigma.t; label : Label.t }
  | Ev_suspend of { vp : int; edge : Sigma.t * Sigma.t; label : Label.t }
  | Ev_attach of { emu : int; value : Sigma.t; label : Label.t }
  | Ev_split of { emu : int; label : Label.t }
  | Ev_decide of { emu : int; value : Value.t; label : Label.t }

type t = {
  alg : algorithm;
  params : params;
  shared : shared;
  emus : emu_state array;
  stats : stats;
  events : event list;  (* newest first *)
}

let log t ev = { t with events = ev :: t.events }

let create alg params =
  let reg_inits =
    List.fold_left
      (fun acc (loc, spec) ->
        if String.equal loc alg.cas_loc then acc
        else Smap.add loc spec.Memory.Spec.init acc)
      Smap.empty alg.bindings
  in
  let emus =
    Array.init params.m (fun id ->
        let vps =
          List.init alg.num_vps (fun vp -> vp)
          |> List.filter (fun vp -> vp mod params.m = id)
          |> List.fold_left
               (fun acc vp ->
                 Imap.add vp
                   { prog = alg.program vp; status = Active; steps = 0 }
                   acc)
               Imap.empty
        in
        {
          id;
          label = Label.root;
          vps;
          seq = 0;
          decided = None;
          stalled = false;
          iterations = 0;
        })
  in
  {
    alg;
    params;
    shared =
      {
        tree = History_tree.create ();
        graph = Vp_graph.create ~m:params.m;
        registers = Smap.empty;
        reg_inits;
      };
    emus;
    stats = zero_stats;
    events = [];
  }

type emulator_view = {
  id : int;
  label : Label.t;
  decided : Value.t option;
  stalled : bool;
  iterations : int;
}

let emulator t j =
  let e = t.emus.(j) in
  {
    id = e.id;
    label = e.label;
    decided = e.decided;
    stalled = e.stalled;
    iterations = e.iterations;
  }

let emulators t = List.init t.params.m (emulator t)
let k t = t.alg.k
let m t = t.params.m
let events t = List.rev t.events
let shared_tree t = t.shared.tree
let vp_graph t = t.shared.graph
let history_of t label = History_tree.history t.shared.tree label
let stats t = t.stats

(* --- v-process inspection and resumption --- *)

type next_op =
  | Next_cas of Sigma.t * Sigma.t
  | Next_read of string
  | Next_write of string * Value.t
  | Next_done of Value.t
  | Next_bad of string

let classify alg (v : vp) =
  match v.status with
  | Decided_vp value -> Next_done value
  | Faulty msg -> Next_bad msg
  | Active | Suspended -> (
    match v.prog with
    | Program.Done value -> Next_done value
    | Program.Step (loc, op, _) when String.equal loc alg.cas_loc -> (
      match op with
      | Value.Pair (Value.Sym "cas", Value.Pair (e, d)) -> (
        match (Sigma.of_value e, Sigma.of_value d) with
        | e, d -> Next_cas (e, d)
        | exception Value.Type_error _ -> Next_bad "cas outside Sigma")
      | _ -> Next_bad "malformed compare&swap operation")
    | Program.Step (loc, op, _) -> (
      match op with
      | Value.Sym "read" -> Next_read loc
      | Value.Pair (Value.Sym "write", v) -> Next_write (loc, v)
      | _ -> Next_bad "operation on an unsupported object"))

let resume (v : vp) response =
  match v.prog with
  | Program.Done _ -> v
  | Program.Step (_, _, k) -> (
    match k response with
    | Program.Done value ->
      { prog = Program.Done value; status = Decided_vp value; steps = v.steps + 1 }
    | next -> { v with prog = next; steps = v.steps + 1 }
    | exception Value.Type_error (want, got) ->
      {
        v with
        status =
          Faulty
            (Printf.sprintf "type error: expected %s, got %s" want
               (Value.to_string got));
        steps = v.steps + 1;
      }
    | exception Failure msg -> { v with status = Faulty msg; steps = v.steps + 1 })

let active_vps alg e =
  Imap.bindings e.vps
  |> List.filter_map (fun (id, v) ->
         if v.status = Active then Some (id, v, classify alg v) else None)

(* --- registers (emulated r/w memory, Fig. 3 commentary) --- *)

let read_register shared ~label loc =
  let writes = Option.value ~default:[] (Smap.find_opt loc shared.registers) in
  match
    List.find_opt (fun (_, l) -> Label.compatible l label) writes
  with
  | Some (v, _) -> v
  | None -> (
    match Smap.find_opt loc shared.reg_inits with
    | Some v -> v
    | None -> Value.unit)

let write_register shared ~label loc v =
  let writes = Option.value ~default:[] (Smap.find_opt loc shared.registers) in
  { shared with registers = Smap.add loc ((v, label) :: writes) shared.registers }

(* --- the iteration (Fig. 3) --- *)

let set_emu t j e =
  let emus = Array.copy t.emus in
  emus.(j) <- e;
  { t with emus }

let last_exn = function
  | [] -> invalid_arg "empty history"
  | l -> List.nth l (List.length l - 1)

(* Suspension (Fig. 3 lines 4-5). *)
let suspend_batches view_hist_len t j (e : emu_state) label' =
  let alg = t.alg in
  let candidates =
    active_vps alg e
    |> List.filter_map (fun (id, _, op) ->
           match op with
           | Next_cas (a, b) when not (Sigma.equal a b) -> Some (id, (a, b))
           | _ -> None)
  in
  let edges =
    List.sort_uniq compare (List.map snd candidates)
  in
  List.fold_left
    (fun (t, e, count) edge ->
      let on_edge = List.filter (fun (_, ed) -> ed = edge) candidates in
      let already =
        Vp_graph.entries t.shared.graph ~emu:j
        |> List.exists (fun en ->
               en.Vp_graph.edge = edge && not en.Vp_graph.released)
      in
      if already || List.length on_edge < t.params.batch then (t, e, count)
      else begin
        let chosen =
          List.filteri (fun i _ -> i < t.params.batch) on_edge
        in
        let graph, vps, t =
          List.fold_left
            (fun (graph, vps, t) (vp_id, _) ->
              ( Vp_graph.suspend graph ~emu:j ~vp:vp_id ~edge ~label:label'
                  ~hist_len:view_hist_len,
                Imap.update vp_id
                  (Option.map (fun v -> { v with status = Suspended }))
                  vps,
                log t (Ev_suspend { vp = vp_id; edge; label = label' }) ))
            (t.shared.graph, e.vps, t) chosen
        in
        ( { t with shared = { t.shared with graph } },
          { e with vps },
          count + List.length chosen )
      end)
    (t, e, 0) edges

(* EmulateSimpleOp (Fig. 3 lines 6-7): one v-process step that does not
   change the compare&swap. *)
let try_simple_op cs t j (e : emu_state) label' =
  let alg = t.alg in
  let eligible =
    active_vps alg e
    |> List.filter_map (fun (id, v, op) ->
           match op with
           | Next_read loc -> Some (id, v, `Read loc)
           | Next_write (loc, value) -> Some (id, v, `Write (loc, value))
           | Next_cas (a, b) when Sigma.equal a b || not (Sigma.equal a cs) ->
             Some (id, v, `Failing_cas)
           | Next_bad msg -> Some (id, v, `Bad msg)
           | Next_done _ | Next_cas _ -> None)
  in
  match eligible with
  | [] -> None
  | (id, v, action) :: _ ->
    let t, v' =
      match action with
      | `Read loc ->
        let value = read_register t.shared ~label:label' loc in
        ( log t (Ev_read { vp = id; loc; value; label = label' }),
          resume v value )
      | `Write (loc, value) ->
        ( log
            { t with shared = write_register t.shared ~label:label' loc value }
            (Ev_write { vp = id; loc; value; label = label' }),
          resume v Value.unit )
      | `Failing_cas ->
        ( log t (Ev_cas_fail { vp = id; returned = cs; label = label' }),
          resume v (Sigma.to_value cs) )
      | `Bad msg -> (t, { v with status = Faulty msg })
    in
    let e = { e with vps = Imap.add id v' e.vps } in
    Some (set_emu t j e, e)

(* CanRebalance (Fig. 5): release a suspended v-process against surplus
   history transitions, swapping in a fresh one. *)
let try_rebalance h t j (e : emu_state) label' =
  let alg = t.alg in
  let m = t.params.m in
  let trans = Excess.transitions h in
  let own_suspended =
    Vp_graph.entries t.shared.graph ~emu:j
    |> List.filter (fun en ->
           (not en.Vp_graph.released)
           && Label.is_prefix en.Vp_graph.label label')
  in
  let count_trans ?(from_pos = 0) edge =
    (* Position of a transition = index of its first symbol. *)
    List.filteri (fun i tr -> i + 1 >= from_pos && tr = edge) trans
    |> List.length
  in
  let releases edge =
    Vp_graph.count_released t.shared.graph ~label:label' ~edge
  in
  let actives_on edge =
    active_vps alg e
    |> List.filter_map (fun (id, _, op) ->
           match op with
           | Next_cas (a, b) when (a, b) = edge && not (Sigma.equal a b) ->
             Some id
           | _ -> None)
  in
  let candidate =
    List.find_map
      (fun en ->
        let edge = en.Vp_graph.edge in
        let unmatched = count_trans edge - releases edge in
        let after = count_trans ~from_pos:en.Vp_graph.hist_len edge in
        match actives_on edge with
        | fresh :: _ when unmatched >= m && after >= m ->
          Some (en, fresh)
        | _ -> None)
      own_suspended
  in
  match candidate with
  | None -> None
  | Some (en, fresh) ->
    let a, _ = en.Vp_graph.edge in
    let graph =
      Vp_graph.release t.shared.graph ~emu:j ~vp:en.Vp_graph.vp
    in
    let graph =
      Vp_graph.suspend graph ~emu:j ~vp:fresh ~edge:en.Vp_graph.edge
        ~label:label' ~hist_len:(List.length h)
    in
    (* The released process's c&s succeeded: it returns the old value a. *)
    let released_vp = resume (Imap.find en.Vp_graph.vp e.vps) (Sigma.to_value a) in
    let released_vp =
      match released_vp.status with
      | Suspended -> { released_vp with status = Active }
      | Active | Decided_vp _ | Faulty _ -> released_vp
    in
    let vps =
      Imap.add en.Vp_graph.vp released_vp
        (Imap.update fresh
           (Option.map (fun v -> { v with status = Suspended }))
           e.vps)
    in
    let e = { e with vps } in
    let t = { t with shared = { t.shared with graph } } in
    let t =
      log
        (log t
           (Ev_cas_success
              { vp = en.Vp_graph.vp; edge = en.Vp_graph.edge; label = label' }))
        (Ev_suspend { vp = fresh; edge = en.Vp_graph.edge; label = label' })
    in
    Some (set_emu t j e, e)

(* UpdateC&S (Fig. 6), line 15: after updating the history with x, every
   active v-process's pending c&s is emulated as a failure returning x
   (their operations linearize just after the update). *)
let fail_all_actives alg (e : emu_state) x =
  let failed = ref [] in
  let vps =
    Imap.mapi
      (fun id v ->
        if v.status = Active then
          match classify alg v with
          | Next_cas _ ->
            failed := id :: !failed;
            resume v (Sigma.to_value x)
          | _ -> v
        else v)
      e.vps
  in
  ({ e with vps }, List.rev !failed)

type update_outcome = [ `Attached | `Split | `Stuck of string ]

let try_update view h cs t j (e : emu_state) label' :
    t * emu_state * update_outcome =
  let alg = t.alg in
  let m = t.params.m in
  (* Choose x: the most popular desired next value among active vps whose
     c&s expects the current value. *)
  let desires =
    active_vps alg e
    |> List.filter_map (fun (_, _, op) ->
           match op with
           | Next_cas (a, b) when Sigma.equal a cs && not (Sigma.equal a b) ->
             Some b
           | _ -> None)
  in
  match desires with
  | [] -> (t, e, `Stuck "no pending successful c&s toward any value")
  | _ -> (
    let grouped =
      List.sort_uniq Sigma.compare desires
      |> List.map (fun b ->
             (List.length (List.filter (Sigma.equal b) desires), b))
      |> List.sort (fun (c1, _) (c2, _) -> compare c2 c1)
    in
    (* Most-popular desired value; ties are broken by a per-emulator
       rotation so simultaneous emulators with symmetric demand pick
       different values (any choice is legal — this one maximizes the
       concurrency the proof must absorb). *)
    let rotation b = (Sigma.index ~k:alg.k b + (alg.k - 1) - j) mod alg.k in
    let x =
      List.fold_left
        (fun best (c, b) ->
          match best with
          | None -> Some (c, b)
          | Some (c', b') ->
            if c > c' || (c = c' && rotation b < rotation b') then Some (c, b)
            else best)
        None grouped
      |> Option.get |> snd
    in
    (* Climb from the node holding cs toward the root, looking for an
       ancestor below which x can be attached with enough cycle width.
       The climb runs over the (possibly stale) snapshot view — exactly
       the concurrency the tree structure is built to absorb. *)
    let view_tree =
      match History_tree.tree view.tree label' with
      | Some tr -> tr
      | None -> (
        match History_tree.tree t.shared.tree label' with
        | Some tr -> tr
        | None -> invalid_arg "UpdateC&S: label tree missing")
    in
    let rightmost = History_tree.rightmost view_tree in
    let ancestors =
      (* Ablation: with attachment disabled the emulator behaves like the
         earlier [1]-style emulation — every update must be a fresh
         first-use split, so value-revisiting subjects stall once the
         alphabet is exhausted. *)
      if t.params.disable_attach then []
      else History_tree.ancestors view_tree rightmost
    in
    (* Pending obligations: the current spine's nodes have not rendered
       their return paths into the history yet; those transitions will
       materialize when the spine is exited, so reserve them before
       spending excess on the new attachment. *)
    let pending_obligations =
      List.concat_map
        (fun node_id ->
          let n = History_tree.tree_node view_tree node_id in
          match n.History_tree.parent with
          | None -> []
          | Some p ->
            let pv = (History_tree.tree_node view_tree p).History_tree.value in
            Excess.transitions
              ((n.History_tree.value :: n.History_tree.to_parent) @ [ pv ]))
        ancestors
    in
    let excess =
      Excess.debit
        (Excess.compute ~k:alg.k
           ~suspensions:(Vp_graph.visible t.shared.graph ~label:label')
           ~history:h)
        pending_obligations
    in
    let attachment =
      List.find_map
        (fun node_id ->
          let node = History_tree.tree_node view_tree node_id in
          let depth = History_tree.depth view_tree node_id in
          let thr = max 1 (Bounds.threshold ~m ~depth) in
          let fv = node.History_tree.value in
          let w = Excess.widest_cycle_through excess fv x in
          if w >= thr then
            match Excess.path_with_width excess ~min_width:1 fv x with
            | None -> None
            | Some from_parent -> (
              (* The entry path materializes immediately; spend it before
                 choosing the return path so shared edges are not double
                 spent. *)
              let entry_edges =
                Excess.transitions ((fv :: from_parent) @ [ x ])
              in
              let excess' = Excess.debit excess entry_edges in
              match Excess.path_with_width excess' ~min_width:1 x fv with
              | Some to_parent -> Some (node_id, from_parent, to_parent)
              | None -> None)
          else None)
        ancestors
    in
    let log_failures t label failed =
      List.fold_left
        (fun t vp -> log t (Ev_cas_fail { vp; returned = x; label }))
        t failed
    in
    match attachment with
    | Some (parent_node, from_parent, to_parent) ->
      let tree, _ =
        History_tree.attach t.shared.tree ~label:label' ~parent_node ~emu:j
          ~seq:e.seq ~value:x ~from_parent ~to_parent
      in
      let e, failed = fail_all_actives alg { e with seq = e.seq + 1 } x in
      let t = { t with shared = { t.shared with tree } } in
      let t = log t (Ev_attach { emu = j; value = x; label = label' }) in
      let t = log_failures t label' failed in
      (set_emu t j e, e, `Attached)
    | None -> (
      match x with
      | Sigma.Bot ->
        (t, e, `Stuck "no cycle support for returning to bottom")
      | Sigma.V xv ->
        if List.exists (Sigma.equal x) h then
          (t, e, `Stuck "no cycle support for an already-used value")
        else begin
          let tree =
            History_tree.activate t.shared.tree ~parent:label' ~value:xv
          in
          let new_label = Label.extend label' xv in
          let e, failed =
            fail_all_actives alg { e with label = new_label } x
          in
          let t = { t with shared = { t.shared with tree } } in
          let t = log t (Ev_split { emu = j; label = new_label }) in
          let t = log_failures t new_label failed in
          (set_emu t j e, e, `Split)
        end))

let step_inner view t j =
  let e0 = t.emus.(j) in
  if e0.decided <> None then t
  else begin
    (* ComputeHistory: refresh the label to a leaf of T, then render. *)
    let label' = History_tree.extend_to_leaf view.tree e0.label in
    let h = History_tree.history view.tree label' in
    let cs = last_exn h in
    let e =
      { e0 with label = label'; iterations = e0.iterations + 1; stalled = false }
    in
    (* Adopt a decision if one of our v-processes already finished. *)
    let decided_value =
      Imap.fold
        (fun _ v acc ->
          match (acc, v.status) with
          | Some _, _ -> acc
          | None, Decided_vp value -> Some value
          | None, _ -> None)
        e.vps None
    in
    let bump (f : stats -> stats) t = { t with stats = f t.stats } in
    Obs.Metrics.incr m_iterations;
    match decided_value with
    | Some value ->
      Obs.Metrics.incr m_decisions;
      bump
        (fun (s : stats) -> { s with iterations = s.iterations + 1 })
        (log
           (set_emu t j { e with decided = Some value })
           (Ev_decide { emu = j; value; label = label' }))
    | None -> (
      let t = set_emu t j e in
      let t, e, suspended_now = suspend_batches (List.length h) t j e label' in
      let t = set_emu t j e in
      Obs.Metrics.incr m_suspensions ~by:suspended_now;
      let count_base (s : stats) =
        { s with
          iterations = s.iterations + 1;
          suspensions = s.suspensions + suspended_now
        }
      in
      (* Try a burst of simple operations. *)
      let rec simple_burst t e n made =
        if n = 0 then (t, e, made)
        else
          match try_simple_op cs t j e label' with
          | Some (t, e) -> simple_burst t e (n - 1) (made + 1)
          | None -> (t, e, made)
      in
      let t, e, simple_made = simple_burst t e t.params.simple_burst 0 in
      if simple_made > 0 then begin
        Obs.Metrics.incr m_simple_ops ~by:simple_made;
        bump (fun s -> { (count_base s) with simple_ops = s.simple_ops + simple_made }) t
      end
      else
        match
          if t.params.disable_rebalance then None
          else try_rebalance h t j e label'
        with
        | Some (t, _) ->
          Obs.Metrics.incr m_releases;
          bump (fun s -> { (count_base s) with releases = s.releases + 1 }) t
        | None -> (
          match try_update view h cs t j e label' with
          | t, _, `Attached ->
            Obs.Metrics.incr m_attaches;
            bump (fun s -> { (count_base s) with attaches = s.attaches + 1 }) t
          | t, _, `Split ->
            Obs.Metrics.incr m_splits;
            bump (fun s -> { (count_base s) with splits = s.splits + 1 }) t
          | t, e, `Stuck _ ->
            Obs.Metrics.incr m_stalls;
            let t = set_emu t j { e with stalled = true } in
            bump
              (fun s ->
                { (count_base s) with stall_events = s.stall_events + 1 })
              t))
  end

let plan t0 ~emu t = step_inner t0.shared t emu
let step t ~emu = plan t ~emu t

type outcome = {
  final : t;
  decisions : (int * Value.t) list;
  distinct_decisions : Value.t list;
  stalled : int list;
  total_iterations : int;
}

let outcome_of t =
  let decisions =
    Array.to_list t.emus
    |> List.filter_map (fun (e : emu_state) ->
           Option.map (fun v -> (e.id, v)) e.decided)
  in
  let distinct_decisions =
    List.sort_uniq Value.compare (List.map snd decisions)
  in
  let stalled =
    Array.to_list t.emus
    |> List.filter_map (fun (e : emu_state) ->
           if e.decided = None && e.stalled then Some e.id else None)
  in
  {
    final = t;
    decisions;
    distinct_decisions;
    stalled;
    total_iterations = t.stats.iterations;
  }

let undecided t =
  Array.to_list t.emus
  |> List.filter_map (fun (e : emu_state) -> if e.decided = None then Some e.id else None)

let progress_key t =
  ( t.stats.simple_ops,
    t.stats.suspensions,
    t.stats.releases,
    t.stats.attaches,
    t.stats.splits,
    Array.to_list t.emus |> List.map (fun (e : emu_state) -> e.decided <> None) )

let span_args t =
  [
    ("alg", Obs.Json.String t.alg.name);
    ("k", Obs.Json.Int t.alg.k);
    ("m", Obs.Json.Int t.params.m);
  ]

let run_generic ~choose ?(max_iterations = 100_000) t =
  let rec go t no_progress =
    match undecided t with
    | [] -> outcome_of t
    | pending ->
      if t.stats.iterations >= max_iterations then outcome_of t
      else if no_progress > 2 * List.length pending then outcome_of t
      else
        let j = choose pending in
        let before = progress_key t in
        let t = step t ~emu:j in
        let no_progress =
          if progress_key t = before then no_progress + 1 else 0
        in
        go t no_progress
  in
  Obs.Span.with_span "emulation.run" ~args:(span_args t) (fun () -> go t 0)

let run ?(seed = 0) ?max_iterations t =
  let rng = Random.State.make [| seed |] in
  run_generic
    ~choose:(fun pending ->
      List.nth pending (Random.State.int rng (List.length pending)))
    ?max_iterations t

let run_round_robin ?max_iterations t =
  let cursor = ref 0 in
  run_generic
    ~choose:(fun pending ->
      incr cursor;
      List.nth pending (!cursor mod List.length pending))
    ?max_iterations t

let run_staleview ?(max_rounds = 10_000) t =
  (* Adversarial simultaneity: in every round all pending emulators act on
     the same snapshot taken at the round's start — the schedule that
     maximizes concurrent updates and hence group splitting. *)
  let rec go t no_progress rounds =
    match undecided t with
    | [] -> outcome_of t
    | pending ->
      if rounds >= max_rounds || no_progress > 2 then outcome_of t
      else
        let view = t in
        let before = progress_key t in
        Obs.Metrics.incr m_rounds;
        let t =
          List.fold_left (fun t j -> plan view ~emu:j t) t pending
        in
        let no_progress =
          if progress_key t = before then no_progress + 1 else 0
        in
        go t no_progress (rounds + 1)
  in
  Obs.Span.with_span "emulation.run_staleview" ~args:(span_args t) (fun () ->
      go t 0 0)
