(* doc_lint: structural check of odoc cross-references in interfaces.

   `dune build @doc` is gated on odoc being installed (see the root
   dune file), so this linter enforces the cheap 90% everywhere odoc
   may be absent: every {!ref} / {{!ref} text} in a lib/ interface must
   point at something that plausibly exists —

   - a dotted path whose head is a known top-level module: any
     compilation unit under the scanned tree, any library entry module
     (parsed from the `(name ...)` fields of the dune files), a stdlib
     or vendored-dependency module, or a submodule declared in the same
     file;
   - a bare capitalized name under the same rule;
   - a bare lowercase name declared in the same file (val / type /
     exception / module / class line).

   It cannot prove a deep path's tail resolves (that needs odoc's
   semantic pass), but it catches the common rot: references to
   renamed or deleted modules and to values that moved files.

   Usage: doc_lint.exe DIR...   (exit 1 when any reference is broken) *)

let stdlib_modules =
  [
    "Stdlib"; "List"; "Array"; "String"; "Bytes"; "Hashtbl"; "Printf";
    "Format"; "Sys"; "Filename"; "Random"; "Option"; "Result"; "Either";
    "Map"; "Set"; "Seq"; "Buffer"; "Int"; "Float"; "Bool"; "Char"; "Fun";
    "Lazy"; "Queue"; "Stack"; "Domain"; "Mutex"; "Condition"; "Atomic";
    "Unix"; "Fmt"; "Cmdliner"; "Alcotest"; "QCheck"; "Bechamel"; "Logs";
    "Invalid_argument"; "Not_found"; "Failure";
  ]

let is_upper c = c >= 'A' && c <= 'Z'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || is_upper c
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        if entry.[0] = '.' || entry.[0] = '_' then acc else walk path acc
      else path :: acc)
    acc (Sys.readdir dir)

(* Every compilation unit in the tree is a visible module name. *)
let unit_modules files =
  List.filter_map
    (fun path ->
      if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
      then
        Some
          (String.capitalize_ascii
             (Filename.remove_extension (Filename.basename path)))
      else None)
    files

(* `(name foo)` / `(public_name x.foo)` in dune files: wrapped library
   entry modules, e.g. lepower_obs -> Lepower_obs. *)
let library_modules files =
  List.concat_map
    (fun path ->
      if Filename.basename path <> "dune" then []
      else
        let text = read_file path in
        let out = ref [] in
        let key = "(name " in
        let rec scan from =
          match String.index_from_opt text from '(' with
          | None -> ()
          | Some i ->
            (if i + String.length key <= String.length text
               && String.sub text i (String.length key) = key
             then
               let start = i + String.length key in
               let stop = ref start in
               while
                 !stop < String.length text && is_ident_char text.[!stop]
               do
                 incr stop
               done;
               if !stop > start then
                 out :=
                   String.capitalize_ascii (String.sub text start (!stop - start))
                   :: !out);
            scan (i + 1)
        in
        scan 0;
        !out)
    files

(* All identifiers appearing on declaration lines of one interface: a
   deliberate over-approximation (any word of a `val`/`type`/... line
   counts), tuned to never reject a real declaration. *)
let declared_idents text =
  let decls = Hashtbl.create 64 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let trimmed = String.trim line in
         let starts p =
           String.length trimmed >= String.length p
           && String.sub trimmed 0 (String.length p) = p
         in
         if
           starts "val " || starts "type " || starts "exception "
           || starts "module " || starts "class " || starts "and "
           || starts "| " || starts "external "
         then begin
           let n = String.length trimmed in
           let i = ref 0 in
           while !i < n do
             if is_ident_char trimmed.[!i] then begin
               let start = !i in
               while !i < n && is_ident_char trimmed.[!i] do incr i done;
               Hashtbl.replace decls (String.sub trimmed start (!i - start)) ()
             end
             else incr i
           done
         end);
  decls

(* odoc reference syntax: strip `kind:` at the front and `kind-` from
   each path component ({!module-Store.t}, {!val:freeze}, ...). *)
let normalize_component c =
  match String.rindex_opt c '-' with
  | Some i -> String.sub c (i + 1) (String.length c - i - 1)
  | None -> c

let split_ref r =
  let r =
    match String.index_opt r ':' with
    | Some i -> String.sub r (i + 1) (String.length r - i - 1)
    | None -> r
  in
  List.map normalize_component (String.split_on_char '.' r)

let line_of text pos =
  let line = ref 1 in
  for i = 0 to pos - 1 do
    if text.[i] = '\n' then incr line
  done;
  !line

let check_file ~known path =
  let text = read_file path in
  let decls = declared_idents text in
  let errors = ref [] in
  let n = String.length text in
  let rec scan i =
    if i + 1 < n then
      if text.[i] = '{' && text.[i + 1] = '!' then begin
        (match String.index_from_opt text (i + 2) '}' with
        | None -> ()
        | Some close ->
          let raw = String.trim (String.sub text (i + 2) (close - i - 2)) in
          (* {!"quoted"} section refs and empty refs are out of scope *)
          if raw <> "" && raw.[0] <> '"' then begin
            match split_ref raw with
            | [] -> ()
            | head :: _ ->
              let ok =
                if head = "" then false
                else if is_upper head.[0] then
                  Hashtbl.mem known head || Hashtbl.mem decls head
                else Hashtbl.mem decls head
              in
              if not ok then
                errors :=
                  Printf.sprintf "%s:%d: unresolved reference {!%s}" path
                    (line_of text i) raw
                  :: !errors
          end);
        scan (i + 2)
      end
      else scan (i + 1)
  in
  scan 0;
  List.rev !errors

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib" ]
  in
  let files = List.concat_map (fun root -> walk root []) roots in
  let known = Hashtbl.create 128 in
  List.iter
    (fun m -> Hashtbl.replace known m ())
    (stdlib_modules @ unit_modules files @ library_modules files);
  let mlis =
    List.sort compare
      (List.filter (fun p -> Filename.check_suffix p ".mli") files)
  in
  let errors = List.concat_map (check_file ~known) mlis in
  List.iter prerr_endline errors;
  Printf.printf "doc_lint: %d interfaces, %d broken references\n"
    (List.length mlis) (List.length errors);
  if errors <> [] then exit 1
