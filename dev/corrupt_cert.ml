(* Corrupt a repro certificate's final fingerprint in place:
   [corrupt_cert IN OUT] copies IN to OUT with the first hex digit of
   the "final" digest field cycled to the next one (0->1, ..., f->0).
   The output is still well-formed JSON and still parses as a
   certificate -- only the digest is wrong -- which is exactly the
   tampering [lepower replay] must reject.  The root @repro-smoke alias
   uses this to pin the rejection path end to end. *)

let key = {|"final":"|}

let cycle_hex c =
  match c with
  | '0' .. '8' | 'a' .. 'e' -> Char.chr (Char.code c + 1)
  | '9' -> 'a'
  | 'f' -> '0'
  | _ -> failwith (Printf.sprintf "not a hex digit after %s: %C" key c)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let () =
  match Sys.argv with
  | [| _; input; output |] ->
    let contents = In_channel.with_open_text input In_channel.input_all in
    let pos =
      match find_sub contents key with
      | Some i -> i + String.length key
      | None ->
        Printf.eprintf "corrupt_cert: no %s field in %s\n" key input;
        exit 1
    in
    let corrupted =
      String.mapi
        (fun i c -> if i = pos then cycle_hex c else c)
        contents
    in
    Out_channel.with_open_text output (fun oc ->
        Out_channel.output_string oc corrupted);
    Printf.printf "corrupted %s -> %s (hex digit at byte %d cycled)\n" input
      output pos
  | _ ->
    prerr_endline "usage: corrupt_cert IN.json OUT.json";
    exit 2
