(* Strictly parse each file named on the command line with
   [Lepower_obs.Json] and fail loudly on the first malformed one.  The
   root @check alias runs this over the telemetry artifacts a smoke
   `lepower elect` run exports — and, with [--jsonl], over the lint
   findings stream `lepower lint` writes — so a regression in an
   exporter or the parser breaks the build rather than shipping
   unloadable JSON.

   Modes:
     validate_json FILE...          each file is one JSON document
     validate_json --jsonl FILE...  each non-empty line of each file is
                                    one JSON document; an empty file is
                                    an error (a lint run always writes
                                    at least its summary record) *)

let validate_document path contents =
  match Lepower_obs.Json.of_string contents with
  | Ok _ -> Printf.printf "valid JSON: %s\n" path
  | Error e ->
    Printf.eprintf "invalid JSON in %s: %s\n" path e;
    exit 1

let validate_jsonl path contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then (
    Printf.eprintf "invalid JSONL in %s: no documents\n" path;
    exit 1);
  List.iteri
    (fun i line ->
      match Lepower_obs.Json.of_string line with
      | Ok _ -> ()
      | Error e ->
        Printf.eprintf "invalid JSONL in %s, line %d: %s\n" path (i + 1) e;
        exit 1)
    lines;
  Printf.printf "valid JSONL: %s (%d documents)\n" path (List.length lines)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jsonl, files =
    match args with
    | "--jsonl" :: rest -> (true, rest)
    | _ -> (false, args)
  in
  if files = [] then (
    prerr_endline "usage: validate_json [--jsonl] FILE...";
    exit 2);
  List.iter
    (fun path ->
      let contents = In_channel.with_open_text path In_channel.input_all in
      (if jsonl then validate_jsonl else validate_document) path contents)
    files
