(* Strictly parse each file named on the command line with
   [Lepower_obs.Json] and fail loudly on the first malformed one.  The
   root @check alias runs this over the telemetry artifacts a smoke
   `lepower elect` run exports, so a regression in either exporter or
   parser breaks the build rather than shipping unloadable JSON. *)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then (
    prerr_endline "usage: validate_json FILE...";
    exit 2);
  List.iter
    (fun path ->
      let contents = In_channel.with_open_text path In_channel.input_all in
      match Lepower_obs.Json.of_string contents with
      | Ok _ -> Printf.printf "valid JSON: %s\n" path
      | Error e ->
        Printf.eprintf "invalid JSON in %s: %s\n" path e;
        exit 1)
    files
