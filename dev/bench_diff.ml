(* Compare two benchmark JSON artifacts (BENCH_explore.json,
   BENCH_micro.json, BENCH_counters.json) and flag regressions.

     bench_diff OLD NEW [--threshold PCT]

   Walks both documents in lockstep and compares every numeric leaf the
   two share.  Direction is inferred from the key name:

     - [wall_s], [*_ns], and entries under a ["benchmarks"] object are
       timings: lower is better, a rise past the threshold regresses;
     - [configs_per_s] is a rate: higher is better, a drop past the
       threshold regresses;
     - every other number (counters, sizes, verdicts encoded as 0/1) is
       compared for information only — printed when it changed, never
       fatal, since work counts legitimately move with the workload.

   Exits 1 when any regression was flagged, 0 otherwise; missing or
   unparseable files are a hard error (exit 2).  The default threshold
   is 20%. *)

module Json = Lepower_obs.Json

let threshold = ref 20.0
let regressions = ref 0

let read_json path =
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e ->
      Printf.eprintf "bench_diff: cannot read %s: %s\n" path e;
      exit 2
  in
  match Json.of_string contents with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "bench_diff: invalid JSON in %s: %s\n" path e;
    exit 2

type direction = Lower_better | Higher_better | Informational

let direction ~in_benchmarks key =
  if in_benchmarks || key = "wall_s" || Filename.check_suffix key "_ns" then
    Lower_better
  else if key = "configs_per_s" then Higher_better
  else Informational

let pct_change ~old_v ~new_v =
  if old_v = 0. then if new_v = 0. then 0. else infinity
  else (new_v -. old_v) /. Float.abs old_v *. 100.

let report path dir old_v new_v =
  let change = pct_change ~old_v ~new_v in
  let flag worse =
    if worse > !threshold then begin
      incr regressions;
      Printf.printf "REGRESSION  %-50s %12.4g -> %-12.4g (%+.1f%%)\n" path
        old_v new_v change
    end
    else if Float.abs change > 0.5 then
      Printf.printf "ok          %-50s %12.4g -> %-12.4g (%+.1f%%)\n" path
        old_v new_v change
  in
  match dir with
  | Lower_better -> flag change
  | Higher_better -> flag (-.change)
  | Informational ->
    if old_v <> new_v then
      Printf.printf "info        %-50s %12.4g -> %-12.4g\n" path old_v new_v

let as_number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Bool _ | Json.Null | Json.String _ | Json.List _ | Json.Obj _ -> None

let rec diff ~in_benchmarks path old_j new_j =
  match (old_j, new_j) with
  | Json.Obj old_fields, Json.Obj new_fields ->
    List.iter
      (fun (key, old_v) ->
        match List.assoc_opt key new_fields with
        | None -> Printf.printf "info        %s/%s: dropped\n" path key
        | Some new_v ->
          diff
            ~in_benchmarks:(in_benchmarks || key = "benchmarks")
            (path ^ "/" ^ key) old_v new_v)
      old_fields
  | Json.List old_items, Json.List new_items
    when List.length old_items = List.length new_items ->
    List.iteri
      (fun i (o, n) -> diff ~in_benchmarks (Printf.sprintf "%s[%d]" path i) o n)
      (List.combine old_items new_items)
  | _ -> (
    match (as_number old_j, as_number new_j) with
    | Some old_v, Some new_v ->
      let key = Filename.basename path in
      report path (direction ~in_benchmarks key) old_v new_v
    | _ -> ())

let () =
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p > 0. -> threshold := p
      | _ ->
        Printf.eprintf "bench_diff: bad threshold %S\n" pct;
        exit 2);
      parse rest
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !positional with
  | [ old_path; new_path ] ->
    diff ~in_benchmarks:false "" (read_json old_path) (read_json new_path);
    if !regressions > 0 then begin
      Printf.printf "%d regression(s) beyond %.0f%%\n" !regressions !threshold;
      exit 1
    end
    else Printf.printf "no regressions beyond %.0f%%\n" !threshold
  | _ ->
    prerr_endline "usage: bench_diff OLD.json NEW.json [--threshold PCT]";
    exit 2
